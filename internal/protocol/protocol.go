package protocol

import (
	"fmt"

	"lazyrc/internal/mesh"
)

// Protocol is the strategy implemented by each coherence protocol. The
// CPU-side methods (CPURead, CPUWrite, AcquireBegin, Release) run on the
// node's processor context and may park it; AcquireEnd and Deliver run on
// the engine (event-handler) side.
type Protocol interface {
	// Name identifies the protocol ("sc", "erc", "lrc", "lrc-ext").
	Name() string
	// Lazy reports whether this is one of the lazy protocols, which pay
	// the higher directory access cost of Table 1.
	Lazy() bool
	// WriteBack reports whether evicted dirty lines carry data home
	// (write-back protocols) rather than relying on write-through.
	WriteBack() bool

	// CPURead performs a load that missed the fast path; it returns when
	// the datum is readable, charging stalls to the node's stats.
	CPURead(n *Node, block uint64, word int)
	// CPUWrite performs a store that missed the fast path; under the
	// relaxed protocols it usually queues the store and returns without
	// waiting for global performance.
	CPUWrite(n *Node, block uint64, word int)

	// AcquireBegin runs when the processor starts an acquire: the lazy
	// protocols begin invalidating notified lines, overlapping with the
	// synchronization latency itself.
	AcquireBegin(n *Node)
	// AcquireEnd runs (on the engine side) when the synchronization
	// operation is granted; done is called when the consistency work
	// (invalidating lines noticed in the intervening time) finishes.
	AcquireEnd(n *Node, done func())
	// Release runs when the processor performs a release; it returns
	// once the node's writes are globally performed per the protocol's
	// rules, charging the wait to SyncStall.
	Release(n *Node)

	// Deliver handles a coherence message arriving at n.
	Deliver(n *Node, m mesh.Msg)
}

// New returns the protocol implementation registered under name.
func New(name string) (Protocol, error) {
	switch name {
	case "sc":
		return &SC{}, nil
	case "erc":
		return &ERC{}, nil
	case "lrc":
		return &LRC{}, nil
	case "lrc-ext", "lrcext":
		return &LRCExt{}, nil
	}
	return nil, fmt.Errorf("protocol: unknown protocol %q (want sc, erc, lrc, lrc-ext)", name)
}

// Names lists the available protocols in evaluation order.
func Names() []string { return []string{"sc", "erc", "lrc", "lrc-ext"} }
