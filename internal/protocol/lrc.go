package protocol

import (
	"lazyrc/internal/cache"
	"lazyrc/internal/causal"
	"lazyrc/internal/mesh"
	"lazyrc/internal/stats"
)

// LRC is the paper's lazy release-consistent protocol: write notices are
// sent as soon as a processor writes a shared block — concurrently with
// computation — but invalidations are deferred to acquire operations.
// Multiple processors may write a block concurrently; write-through
// caches with a coalescing buffer keep memory current so the home never
// forwards a read.
type LRC struct{ invalPaths }

var _ Protocol = (*LRC)(nil)
var _ lazyNoticePolicy = (*LRC)(nil)

// Name returns "lrc".
func (*LRC) Name() string { return "lrc" }

// Lazy reports true: this protocol pays the lazy directory access cost.
func (*LRC) Lazy() bool { return true }

// WriteBack reports false: the lazy protocols use write-through.
func (*LRC) WriteBack() bool { return false }

// EagerNotices reports true: notices go out at write time.
func (*LRC) EagerNotices() bool { return true }

// Deliver handles one coherence message.
func (*LRC) Deliver(n *Node, m mesh.Msg) { lazyDeliver(n, m) }

// CPURead performs a load. On a miss the processor stalls until the fill
// completes; concurrent requests for the same block merge onto one
// transaction.
func (*LRC) CPURead(n *Node, block uint64, word int) { lazyCPURead(n, block, word) }

// lazyCPURead is the blocking load path shared by the invalidation
// protocols (the timestamp protocols use tardisCPURead):
// miss, request, stall until the fill arrives (merging onto any
// transaction already in flight for the block). An arriving fill
// satisfies the load even if a racing invalidation dropped the copy in
// the same instant.
func lazyCPURead(n *Node, block uint64, word int) {
	for {
		if n.Cache.Lookup(block) != nil {
			return
		}
		if t := n.txn(block); t != nil {
			if !t.Data.IsOpen() {
				n.PS.ReadStall += n.waitStall(&t.Data, t.CT, causal.StallRead, "merged read fill")
				if t.Filled {
					return
				}
			} else {
				n.PS.ReadStall += n.waitStall(&t.Done, t.CT, causal.StallRead, "transaction completion")
			}
			continue
		}
		n.countMiss(block, word, false)
		t := n.newTxn(block)
		t.ExpectData = true
		n.send(n.homeOf(block), MsgReadReq, block, 0, 0, 0)
		n.PS.ReadStall += n.waitStall(&t.Data, t.CT, causal.StallRead, "read fill")
		if t.Filled {
			return
		}
	}
}

// CPUWrite performs a store. Stores to resident read-write lines commit
// through the coalescing write-through path; stores to read-only lines
// take write permission immediately (the write notice is processed in
// the background — no write-after-read stall); stores to absent lines
// occupy a write-buffer entry until the data returns.
func (p *LRC) CPUWrite(n *Node, block uint64, word int) {
	lazyCPUWrite(n, block, word, true)
}

// lazyCPUWrite implements the store path for both lazy protocols;
// eager selects the notice policy.
func lazyCPUWrite(n *Node, block uint64, word int, eager bool) {
	for {
		line := n.Cache.Lookup(block)
		switch {
		case line != nil && line.State == cache.ReadWrite:
			n.commitWT(block, word)
			return

		case line != nil: // read-only: take write permission locally
			if t := n.txn(block); t != nil {
				// A transaction is in flight for this block (rare race);
				// let it settle before upgrading.
				n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "upgrade conflict")
				continue
			}
			n.countMiss(block, word, true)
			n.Cache.Upgrade(block)
			n.commitWT(block, word)
			if eager {
				t := n.newTxn(block)
				t.IsWrite = true
				t.Data.Open() // nothing to wait for but the done
				n.send(n.homeOf(block), MsgWriteReq, block, 0, 0, 0)
				if n.Env.Cfg.SoftwareCoherence {
					// Software DSM: the notice round trip runs on the
					// main processor, not in the background.
					n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "software notice")
				}
			} else {
				n.addDelayed(block)
			}
			return

		default: // absent: write miss through the write buffer
			if t := n.txn(block); t != nil && !t.Data.IsOpen() {
				// Merge onto the in-flight fill; the store waits in the
				// write buffer and is applied when the data lands.
				allocated, ok := n.WB.Put(block, word)
				if !ok {
					n.stallWBFull()
					continue
				}
				if allocated {
					n.PS.Misses[stats.WriteMiss]++ // write without permission
				}
				return
			}
			if t := n.txn(block); t != nil {
				n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "write conflict")
				continue
			}
			if _, ok := n.WB.Put(block, word); !ok {
				n.stallWBFull()
				continue
			}
			n.countMiss(block, word, false)
			t := n.newTxn(block)
			t.ExpectData = true
			t.IsWrite = true
			if eager {
				n.send(n.homeOf(block), MsgWriteReq, block, 0, wantData, 0)
				if n.Env.Cfg.SoftwareCoherence {
					// Software DSM: the write fault handler blocks until
					// the notice collection completes.
					n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "software write fault")
				}
			} else {
				// The lazier protocol fetches the data as an ordinary
				// read and upgrades silently when it arrives.
				n.send(n.homeOf(block), MsgReadReq, block, 0, 0, 0)
			}
			return
		}
	}
}

// AcquireBegin starts invalidating lines for already-received notices,
// overlapping the work with the synchronization latency itself (unless
// the ablation knob NoAcquireOverlap defers it all to AcquireEnd).
func (*LRC) AcquireBegin(n *Node) {
	if !n.Env.Cfg.NoAcquireOverlap {
		n.processPendInv()
	}
}

// AcquireEnd invalidates lines whose notices arrived while the
// synchronization operation was in flight; done runs when the protocol
// processor finishes.
func (*LRC) AcquireEnd(n *Node, done func()) {
	end := n.processPendInv()
	n.Env.Eng.At(end, done)
}

// Release flushes the coalescing buffer and stalls until the write
// buffer drains, outstanding transactions complete, and memory
// acknowledges all write-throughs — the three conditions of §2. Write
// misses retiring during the drain can deposit fresh coalesced words, so
// the flush repeats until the write path is fully dry.
func (*LRC) Release(n *Node) {
	for {
		n.flushCB()
		n.waitDrained()
		if n.CB.Empty() {
			return
		}
	}
}
