package protocol

import (
	"lazyrc/internal/cache"
	"lazyrc/internal/mesh"
)

// ERC is eager release consistency in the style of the DASH
// implementation: an ownership-based write-back directory protocol in
// which writes trigger invalidations immediately but execute in the
// background of computation. The processor stalls only when its
// (4-entry) write buffer overflows or when it reaches a release with
// coherence transactions still outstanding.
type ERC struct{ invalPaths }

var _ Protocol = (*ERC)(nil)

// Name returns "erc".
func (*ERC) Name() string { return "erc" }

// Lazy reports false: the eager directory access cost applies.
func (*ERC) Lazy() bool { return false }

// WriteBack reports true: replaced dirty lines carry their data home.
func (*ERC) WriteBack() bool { return true }

// Deliver handles one coherence message.
func (*ERC) Deliver(n *Node, m mesh.Msg) { eagerDeliver(n, m) }

// CPURead performs a load, stalling on misses until the fill (possibly a
// 3-hop owner forward) completes.
func (*ERC) CPURead(n *Node, block uint64, word int) { lazyCPURead(n, block, word) }

// CPUWrite performs a store: it enters the write buffer and the
// processor moves on; ownership acquisition and invalidations proceed in
// the background. The processor stalls only when the buffer is full.
func (*ERC) CPUWrite(n *Node, block uint64, word int) {
	for {
		line := n.Cache.Lookup(block)
		if line != nil && line.State == cache.ReadWrite {
			n.commitWB(block, word)
			return
		}
		allocated, ok := n.WB.Put(block, word)
		if !ok {
			n.stallWBFull()
			continue
		}
		if !allocated {
			return // coalesced into an entry whose transaction is in flight
		}
		if t := n.txn(block); t != nil {
			// A fill is already in flight (merged read); the retirement
			// logic takes over when it lands.
			_ = t
			return
		}
		upgrade := line != nil
		n.countMiss(block, word, upgrade)
		t := n.newTxn(block)
		t.IsWrite = true
		arg := uint64(0)
		if line == nil {
			arg = wantData
			t.ExpectData = true
		}
		n.send(n.homeOf(block), MsgWriteReq, block, 0, arg, 0)
		return
	}
}

// AcquireBegin is a no-op: eager protocols invalidate at write time.
func (*ERC) AcquireBegin(n *Node) {}

// AcquireEnd completes immediately: nothing is deferred to acquires.
func (*ERC) AcquireEnd(n *Node, done func()) { done() }

// Release stalls until the write buffer has drained, every outstanding
// ownership/invalidation transaction has completed, and memory has
// acknowledged outstanding write-backs.
func (*ERC) Release(n *Node) { n.waitDrained() }
