package protocol

// dedupWindowSize bounds the per-node duplicate-detection memory. The
// injector re-sends a duplicate within at most a few hundred cycles of the
// original, during which a node receives far fewer than 8192 messages, so
// a transaction id is never evicted from the window while its duplicate
// is still in flight.
const dedupWindowSize = 8192

// dedupWindow remembers the last dedupWindowSize transaction ids delivered
// to a node so injected duplicate messages can be recognized and ignored.
// The zero value is ready to use and allocates nothing until the first
// stamped message arrives — runs without fault injection never touch it.
type dedupWindow struct {
	seen map[uint64]struct{}
	ring []uint64
	next int
}

// admit records tid and reports whether it is new. A false return means
// the message is a duplicate delivery and must be discarded.
func (d *dedupWindow) admit(tid uint64) bool {
	if d.seen == nil {
		d.seen = make(map[uint64]struct{})
		d.ring = make([]uint64, dedupWindowSize)
	}
	if _, dup := d.seen[tid]; dup {
		return false
	}
	if old := d.ring[d.next]; old != 0 {
		delete(d.seen, old)
	}
	d.ring[d.next] = tid
	d.next = (d.next + 1) % dedupWindowSize
	d.seen[tid] = struct{}{}
	return true
}
