package protocol

import (
	"fmt"
	"math/bits"

	"lazyrc/internal/cache"
	"lazyrc/internal/causal"
	"lazyrc/internal/directory"
	"lazyrc/internal/mesh"
	"lazyrc/internal/stats"
)

// This file implements the message handling shared by the two lazy
// protocols (LRC and LRCExt). The home-node directory logic is identical
// for both; they differ only on the CPU side, in when the write notice
// trigger (MsgWriteReq) is sent.
//
// Home-side rules (§2 of the paper):
//
//   - Reads are always answered from memory — the home never forwards a
//     read. A read of a dirty block moves it to Weak and sends a notice
//     to the writer.
//   - A write adds the requester to the sharer and writer sets. If other
//     processors cache the block it becomes Weak, and every sharer that
//     has not yet been notified receives a write notice. The home
//     collects the notice acknowledgements — once per block, even when
//     write requests from several processors overlap — and then sends
//     WriteDone to every waiting writer.
//   - Acquire-time invalidation notifications and eviction hints remove
//     the processor from the sharer set; the block reverts to Shared,
//     Dirty, or Uncached as appropriate.

// lazyNoticePolicy distinguishes the two lazy protocols in shared
// requester-side code paths.
type lazyNoticePolicy interface {
	// EagerNotices reports whether write notices are triggered at write
	// time (LRC) rather than buffered until release (LRCExt).
	EagerNotices() bool
}

// lazyDeliver dispatches one message for a lazy-protocol node.
func lazyDeliver(n *Node, m mesh.Msg) {
	switch MsgKind(m.Kind) {
	case MsgReadReq:
		lazyHomeRead(n, m)
	case MsgWriteReq:
		lazyHomeWrite(n, m)
	case MsgNoticeAck:
		lazyHomeNoticeAck(n, m)
	case MsgWriteThrough:
		homeWriteThrough(n, m)
	case MsgInvNotify, MsgEvict:
		homeDropCopy(n, m)
	case MsgReadReply:
		lazyReadReply(n, m)
	case MsgWriteData:
		lazyWriteData(n, m)
	case MsgWriteDone:
		lazyWriteDone(n, m)
	case MsgNotice:
		lazyNotice(n, m)
	case MsgWTAck:
		n.wtPending--
		n.checkDrain()
	default:
		panic(fmt.Sprintf("protocol: lazy node %d got unexpected %v", n.ID, MsgKind(m.Kind)))
	}
}

// lazyHomeRead serves a read request at the home: directory transition at
// the protocol processor, memory fetch in parallel, data reply at
// whichever finishes last. The reply carries the block's new global state
// so a requester joining a weak block knows to invalidate it at its next
// acquire.
func lazyHomeRead(n *Node, m mesh.Msg) {
	memEnd := n.memAccess(n.lineBytes())
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		e := n.Dir.Entry(m.Addr)
		was := e.State
		e.Sharers.Add(m.Src)
		sendEnd := n.now()
		if was == directory.Dirty && !e.Writers.Has(m.Src) {
			// Read of a dirty block: it becomes weak, and the current
			// writer is notified (the one read-triggered notice case).
			writer := e.Writers.Only()
			if !e.Notified.Has(writer) {
				dspEnd := n.ppAcquire(causal.KindFanout, m.Addr, n.noticeCost())
				sendEnd = dspEnd
				e.Notified.Add(writer)
				e.PendingAcks++
				n.observe("wn-send", m.Addr, 0, writer)
				n.send(writer, MsgNotice, m.Addr, 0, 0, 0)
			}
		}
		e.Recompute()
		// A reader joining a weak block is NOT marked notified and will
		// not invalidate its fresh copy at its next acquire: its data is
		// current as of this fetch, and any writer's next announcement
		// (which must follow the writer's own acquire-time invalidation,
		// since the writer was notified when the block went weak) sends
		// the reader a notice then. Marking readers here would make
		// consumers re-fetch producer data at every acquire — a thrash
		// the paper's miss rates (lazy never above eager) rule out.
		n.Dir.Check(m.Addr, e)
		at := maxTime(sendEnd, memEnd)
		st := uint64(e.State)
		n.Env.Eng.At(at, func() {
			n.sendData(m.Src, MsgReadReply, m.Addr, n.lineBytes(), st, 0, n.homeVals(m.Addr))
		})
	})
}

// lazyHomeWrite serves a write request: the requester becomes a writer;
// sharers that have not heard about the weak transition get notices, whose
// acknowledgements the home collects before declaring the write globally
// performed.
func lazyHomeWrite(n *Node, m mesh.Msg) {
	wantsData := m.Arg&wantData != 0
	var memEnd uint64
	if wantsData {
		memEnd = n.memAccess(n.lineBytes())
	}
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		e := n.Dir.Entry(m.Addr)
		e.Sharers.Add(m.Src)
		e.Writers.Add(m.Src)
		e.Recompute()

		// Dispatch notices to not-yet-notified sharers other than the
		// requester.
		var targets []int
		if e.State == directory.Weak {
			e.Sharers.Visit(func(id int) {
				if id != m.Src && !e.Notified.Has(id) {
					targets = append(targets, id)
				}
			})
			e.Notified.Add(m.Src) // learns weakness from the reply
		}
		sendEnd := n.now()
		if len(targets) > 0 {
			// The one case the paper prices specially: directory access
			// plus per-sharer dispatch cost.
			dspEnd := n.ppAcquire(causal.KindFanout, m.Addr, uint64(len(targets))*n.noticeCost())
			sendEnd = dspEnd
			for _, id := range targets {
				e.Notified.Add(id)
				e.PendingAcks++
				n.observe("wn-send", m.Addr, 0, id)
				n.send(id, MsgNotice, m.Addr, 0, 0, 0)
			}
		}
		n.Dir.Check(m.Addr, e)

		complete := e.PendingAcks == 0
		if !complete {
			e.WaitingWriters = append(e.WaitingWriters, m.Src)
		}
		if wantsData {
			at := maxTime(sendEnd, memEnd)
			st := uint64(e.State)
			aux := uint64(0)
			if complete {
				aux = 1
			}
			n.Env.Eng.At(at, func() {
				n.sendData(m.Src, MsgWriteData, m.Addr, n.lineBytes(), st, aux, n.homeVals(m.Addr))
			})
		} else if complete {
			st := uint64(e.State)
			n.Env.Eng.At(sendEnd, func() {
				n.send(m.Src, MsgWriteDone, m.Addr, 0, st, 0)
			})
		}
	})
}

// lazyHomeNoticeAck collects one notice acknowledgement; when the set
// completes, every writer that was told to wait is released at once.
func lazyHomeNoticeAck(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindAck, m.Addr, n.noticeCost())
	n.Env.Eng.At(end, func() {
		e := n.Dir.Entry(m.Addr)
		e.PendingAcks--
		if e.PendingAcks < 0 {
			panic(fmt.Sprintf("protocol: node %d negative pending acks for block %d", n.ID, m.Addr))
		}
		if e.PendingAcks == 0 {
			writers := e.WaitingWriters
			e.WaitingWriters = nil
			st := uint64(e.State)
			for _, w := range writers {
				n.send(w, MsgWriteDone, m.Addr, 0, st, 0)
			}
		}
	})
}

// homeWriteThrough merges coalesced dirty words into home memory and
// acknowledges the writer. Shared with nothing eager: write-back
// protocols use homeWriteBack.
func homeWriteThrough(n *Node, m mesh.Msg) {
	n.mergeHome(m.Addr, m.Vals, m.Arg)
	ppEnd := n.ppAcquire(causal.KindDir, m.Addr, n.noticeCost())
	memEnd := n.memAccess(m.Size)
	n.Env.Eng.At(maxTime(ppEnd, memEnd), func() {
		n.send(m.Src, MsgWTAck, m.Addr, 0, 0, 0)
	})
}

// homeDropCopy removes a processor's copy from the directory (acquire
// invalidation notification or eviction hint) and reverts the block's
// state per the paper's rule. Shared by all protocols.
func homeDropCopy(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(end, func() {
		e := n.Dir.Peek(m.Addr)
		if e == nil {
			return
		}
		e.Sharers.Remove(m.Src)
		e.Writers.Remove(m.Src)
		e.Notified.Remove(m.Src)
		e.Recompute()
		n.Dir.Check(m.Addr, e)
	})
}

// memAccess starts a memory-module access for b payload bytes now and
// returns its completion time.
func (n *Node) memAccess(b int) uint64 {
	req := n.now()
	start, end := n.Mem.Acquire(req, n.memCycles(b))
	n.Env.Causal.Service(causal.KindMem, n.ID, 0, req, start, end)
	return end
}

func maxTime(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ---- Requester side ------------------------------------------------------

// lazyReadReply installs read data. If the block is weak it is queued for
// acquire-time invalidation immediately; if an invalidation arrived while
// the fill was in flight, the copy is dropped as soon as it lands.
func lazyReadReply(n *Node, m mesh.Msg) {
	t := n.txn(m.Addr)
	if t == nil {
		panic(fmt.Sprintf("protocol: node %d read reply without txn (block %d)", n.ID, m.Addr))
	}
	n.fillLine(m.Addr, cache.ReadOnly, m.Vals, func() {
		t.Filled = true
		inv := t.InvalidateOnFill
		n.finishTxn(t) // reads complete at fill
		lazyRetireWB(n, m.Addr)
		if inv {
			n.dropFilledCopy(m.Addr)
		}
	})
}

// lazyWriteData installs write-miss data, applies the buffered stores,
// and completes the transaction if the home said no acknowledgements were
// pending (aux == 1).
func lazyWriteData(n *Node, m mesh.Msg) {
	t := n.txn(m.Addr)
	if t == nil {
		panic(fmt.Sprintf("protocol: node %d write data without txn (block %d)", n.ID, m.Addr))
	}
	n.fillLine(m.Addr, cache.ReadWrite, m.Vals, func() {
		t.Filled = true
		if directory.State(m.Arg) == directory.Weak {
			n.addPendInv(m.Addr)
		}
		inv := t.InvalidateOnFill
		if m.Aux == 1 || t.DoneEarly {
			n.finishTxn(t)
		} else if !t.Data.IsOpen() {
			t.Data.Open()
		}
		if inv {
			n.dropFilledCopy(m.Addr)
		}
		// The line may have been evicted by a conflicting fill (or
		// dropped above) between data arrival and bus completion;
		// lazyRetireWB re-checks its state and restarts if necessary.
		lazyRetireWB(n, m.Addr)
	})
}

// lazyWriteDone completes a write transaction once the home has collected
// all notice acknowledgements. If the (smaller, faster) done message
// overtook the data reply, completion is deferred to the fill.
func lazyWriteDone(n *Node, m mesh.Msg) {
	t := n.txn(m.Addr)
	if t == nil {
		panic(fmt.Sprintf("protocol: node %d write done without txn (block %d)", n.ID, m.Addr))
	}
	// A writer of a weak block queues it for invalidation at its own
	// next acquire: other writers' words may change under it.
	if directory.State(m.Arg) == directory.Weak && n.Cache.Lookup(m.Addr) != nil {
		n.addPendInv(m.Addr)
	}
	if t.ExpectData && !t.Data.IsOpen() {
		t.DoneEarly = true
		return
	}
	n.finishTxn(t)
}

// lazyNotice processes an incoming write notice: the block joins the
// acquire-time invalidation set (it remains readable until then) and the
// collecting home is acknowledged.
func lazyNotice(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindNotice, m.Addr, n.noticeCost())
	n.Env.Eng.At(end, func() {
		n.PS.NoticesIn++
		if n.Cache.Lookup(m.Addr) != nil || n.txn(m.Addr) != nil {
			n.observe("wn-apply", m.Addr, 0, m.Src)
			n.addPendInv(m.Addr)
		}
		n.send(m.Src, MsgNoticeAck, m.Addr, 0, 0, 0)
	})
}

// dropFilledCopy invalidates a copy the moment its (already stale) fill
// lands — the notice raced the data reply.
func (n *Node) dropFilledCopy(block uint64) {
	if _, ok := n.Cache.Invalidate(block); ok {
		if e, ok := n.CB.Remove(block); ok {
			n.sendWriteThrough(e)
		}
		n.removeDelayed(block)
		n.Env.Class.Lose(n.ID, block, stats.LossCoherence, n.wordsPerLine())
		n.send(n.homeOf(block), MsgInvNotify, block, 0, 0, 0)
	}
}

// applyWTWords commits each buffered word of a retired write-buffer entry
// through the write-through path.
func applyWTWords(n *Node, block uint64, words uint64) {
	for m := words; m != 0; m &= m - 1 {
		n.commitWT(block, bits.TrailingZeros64(m))
	}
}

// lazyRetireWB resolves a write-buffer entry for block after data has
// arrived. Depending on how the race resolved, the line may be:
//
//   - read-write: apply the words (the usual write-miss completion);
//   - read-only: a merged read fetched it first — take write permission
//     per the protocol's notice policy (eager WriteReq or deferred);
//   - absent: an invalidation landed first — restart the write miss when
//     the current transaction fully completes.
func lazyRetireWB(n *Node, block uint64) {
	e := n.WB.Find(block)
	if e == nil {
		return
	}
	line := n.Cache.Lookup(block)
	switch {
	case line != nil && line.State == cache.ReadWrite:
		n.WB.Retire(block)
		applyWTWords(n, block, e.Words)
		n.wbRetired()
	case line != nil:
		n.Cache.Upgrade(block)
		words := n.WB.Retire(block).Words
		applyWTWords(n, block, words)
		n.wbRetired()
		if n.Proto.(lazyNoticePolicy).EagerNotices() {
			if n.txn(block) == nil {
				t := n.newTxn(block)
				t.IsWrite = true
				t.Data.Open()
				n.send(n.homeOf(block), MsgWriteReq, block, 0, 0, 0)
			}
		} else {
			n.addDelayed(block)
		}
	default:
		// Invalidated while in flight: reissue once the transaction
		// machinery quiesces for this block.
		if t := n.txn(block); t != nil {
			t.Done.Subscribe(func() { lazyRestartWrite(n, block) })
		} else {
			lazyRestartWrite(n, block)
		}
	}
}

// lazyRestartWrite restarts a write miss for a still-buffered store whose
// previous fill was invalidated in flight.
func lazyRestartWrite(n *Node, block uint64) {
	e := n.WB.Find(block)
	if e == nil {
		return
	}
	if n.txn(block) != nil {
		// Another transaction appeared (e.g. a read); ride it.
		return
	}
	word := bits.TrailingZeros64(e.Words)
	n.countMiss(block, word, false)
	t := n.newTxn(block)
	t.ExpectData = true
	t.IsWrite = true
	if n.Proto.(lazyNoticePolicy).EagerNotices() {
		n.send(n.homeOf(block), MsgWriteReq, block, 0, wantData, 0)
	} else {
		n.send(n.homeOf(block), MsgReadReq, block, 0, 0, 0)
	}
}
