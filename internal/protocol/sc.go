package protocol

import (
	"lazyrc/internal/cache"
	"lazyrc/internal/causal"
	"lazyrc/internal/mesh"
)

// SC is the sequentially consistent directory protocol used as the
// normalization baseline of every figure: the same ownership-based
// directory as ERC, but the processor stalls on every read miss and on
// every write until the access is globally performed. There is no write
// buffer and no consistency work at synchronization operations.
type SC struct{ invalPaths }

var _ Protocol = (*SC)(nil)

// Name returns "sc".
func (*SC) Name() string { return "sc" }

// Lazy reports false: the eager directory access cost applies.
func (*SC) Lazy() bool { return false }

// WriteBack reports true: replaced dirty lines carry their data home.
func (*SC) WriteBack() bool { return true }

// Deliver handles one coherence message (shared with ERC).
func (*SC) Deliver(n *Node, m mesh.Msg) { eagerDeliver(n, m) }

// CPURead performs a load, stalling on misses.
func (*SC) CPURead(n *Node, block uint64, word int) { lazyCPURead(n, block, word) }

// CPUWrite performs a store and stalls until ownership is granted and
// all invalidations are acknowledged — the sequential-consistency cost
// the relaxed protocols avoid. The store rides the write-buffer
// retirement path (a one-deep MSHR here, not a relaxed write buffer) so
// that it commits in the same event as the ownership grant; committing
// only after the processor wakes would leave a window for a forwarded
// request to steal the line first.
func (*SC) CPUWrite(n *Node, block uint64, word int) {
	for {
		line := n.Cache.Lookup(block)
		if line != nil && line.State == cache.ReadWrite {
			n.commitWB(block, word)
			return
		}
		if t := n.txn(block); t != nil {
			n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "write completion")
			if n.WB.Find(block) == nil {
				return // the grant handler committed the buffered store
			}
			continue
		}
		if _, ok := n.WB.Put(block, word); !ok {
			n.stallWBFull()
			continue
		}
		n.countMiss(block, word, line != nil)
		t := n.newTxn(block)
		t.IsWrite = true
		arg := uint64(0)
		if line == nil {
			arg = wantData
			t.ExpectData = true
		}
		n.send(n.homeOf(block), MsgWriteReq, block, 0, arg, 0)
		n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "write completion")
		if n.WB.Find(block) == nil {
			return
		}
	}
}

// AcquireBegin is a no-op: coherence is maintained on every access.
func (*SC) AcquireBegin(n *Node) {}

// AcquireEnd completes immediately.
func (*SC) AcquireEnd(n *Node, done func()) { done() }

// Release is a no-op: every write already performed globally.
func (*SC) Release(n *Node) {}
