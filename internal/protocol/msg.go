// Package protocol implements six coherence protocols — the four of the
// paper plus two timestamp protocols — on top of the simulated mesh,
// caches, and directories:
//
//   - SC: a sequentially consistent directory protocol (every access
//     stalls until globally performed) — the unit line of every figure.
//   - ERC: eager release consistency in the style of DASH — write-back
//     caches, exclusive ownership, invalidations dispatched at write
//     time, a small write buffer with read bypass, and releases that
//     stall until all outstanding coherence transactions complete.
//   - LRC: the paper's lazy protocol — multiple concurrent writers,
//     write notices sent at write time and processed in the background,
//     invalidations deferred to acquire operations, write-through caches
//     with a coalescing buffer, and home-collected acknowledgements.
//   - LRCExt: the lazier variant — write notices buffered locally and
//     posted only at release (or on eviction of a written block).
//   - Tardis: timestamp coherence — logical read leases instead of
//     invalidation fan-out, with sequentially consistent stalling
//     stores (see tardis.go).
//   - Tardis2: the relaxed variant — buffered stores and an
//     acquire-time lease-expiry sweep (see tardis2.go).
//
// The package also provides the synchronization managers (queue locks,
// barriers, one-shot flags) whose acquire and release operations carry
// the consistency-model hooks.
package protocol

import (
	"fmt"

	"lazyrc/internal/faults"
)

// MsgKind enumerates coherence and synchronization message types.
type MsgKind int

const (
	// MsgReadReq asks a home node for a block's data (control).
	MsgReadReq MsgKind = iota
	// MsgReadReply returns block data to a requester (data). Arg carries
	// the directory state after the transition (directory.State) so lazy
	// requesters learn whether the block is weak.
	MsgReadReply
	// MsgWriteReq announces a write (and, if Arg&wantData, asks for the
	// block's data): the ownership request of the eager protocols, the
	// write notice trigger of the lazy ones.
	MsgWriteReq
	// MsgWriteData returns block data for a write miss (data). Arg
	// carries the directory state.
	MsgWriteData
	// MsgWriteDone tells a writer that its write request is globally
	// performed (all invalidations or notice acks collected).
	MsgWriteDone
	// MsgInval orders a sharer to invalidate its copy now (eager
	// protocols; control). Aux carries 1 if the home needs the data
	// back (owner invalidation).
	MsgInval
	// MsgInvalAck acknowledges an invalidation to the collecting home.
	MsgInvalAck
	// MsgNotice is a lazy write notice: the block has entered the weak
	// state; invalidate it at your next acquire (control).
	MsgNotice
	// MsgNoticeAck acknowledges a write notice to the collecting home.
	MsgNoticeAck
	// MsgFwdRead asks the current owner to supply data to a reader
	// (eager 3-hop; control). Arg is the original requester.
	MsgFwdRead
	// MsgFwdWrite asks the current owner to yield the block to a writer
	// (eager 3-hop; control). Arg is the original requester.
	MsgFwdWrite
	// MsgOwnerData is data supplied by an owner to a requester (data).
	// Arg carries the directory state, Aux 1 if ownership transfers.
	MsgOwnerData
	// MsgSharingWB is the owner's concurrent write-back to the home when
	// a third party reads a dirty block (data).
	MsgSharingWB
	// MsgXferDone tells the home that a forwarded request has been
	// served by the (old) owner, ending the transfer window during which
	// further requests for the block are deferred.
	MsgXferDone
	// MsgFwdNack tells the home the owner could not serve a forwarded
	// request (its copy is gone); the home re-resolves the original
	// request from the current directory state. Arg is the original
	// requester; Aux packs the original request (bit 0: write, bit 1:
	// wantData).
	MsgFwdNack
	// MsgWriteBack carries a replaced dirty block's data home (data).
	MsgWriteBack
	// MsgWriteThrough carries coalesced dirty words home (data payload =
	// dirty words; Arg is the word mask).
	MsgWriteThrough
	// MsgWTAck acknowledges a write-through or write-back merge into
	// memory.
	MsgWTAck
	// MsgEvict is a replacement hint: drop me from the sharer set
	// (control).
	MsgEvict
	// MsgInvNotify tells the home an acquire-time invalidation dropped a
	// copy (lazy protocols; control).
	MsgInvNotify
	// MsgNoticePost is the lazier protocol's deferred write notice,
	// posted at release or eviction (control).
	MsgNoticePost

	// MsgLockReq through MsgFlagGo are synchronization traffic handled
	// by the sync managers. Aux carries the object id. Addr carries the
	// logical timestamp of the timestamp protocols (0 otherwise).
	MsgLockReq
	MsgLockGrant
	MsgLockFree
	MsgBarArrive
	MsgBarGo
	MsgFlagSet
	MsgFlagWait
	MsgFlagGo

	// The MsgT* kinds belong to the timestamp protocols (tardis,
	// tardis2), which replace invalidation fan-out with logical leases.
	// They are appended after the sync block so every pre-existing kind
	// keeps its number (fault plans and traffic tables stay stable).

	// MsgTReadReq asks the home for a block's data and a read lease
	// (control). Arg is the requester's program timestamp.
	MsgTReadReq
	// MsgTReadReply returns block data plus its lease (data). Arg is the
	// write timestamp, Aux the read-lease end.
	MsgTReadReply
	// MsgTRenewReq asks the home to extend an expired lease (control).
	// Arg is the requester's program timestamp, Aux the write timestamp
	// of its cached copy (so the home can prove the copy current).
	MsgTRenewReq
	// MsgTRenewAck extends a lease without data — the renewal fast path
	// when the copy is still current (control). Arg is the write
	// timestamp, Aux the new read-lease end.
	MsgTRenewAck
	// MsgTWriteReq asks the home for exclusive ownership (control). Arg
	// is the requester's program timestamp. Aux bit 0 asks for the
	// block's contents unconditionally (no cached copy); Aux bit 1 says
	// a read copy with write timestamp Aux>>2 is cached, so the home
	// includes data only if that copy is stale.
	MsgTWriteReq
	// MsgTWriteReply grants exclusive ownership (data iff Aux&1). Arg is
	// the new write timestamp.
	MsgTWriteReply
	// MsgTRecall asks the current exclusive owner to yield the block
	// back to the home (control).
	MsgTRecall
	// MsgTYield returns a recalled block's data to the home, giving up
	// ownership (data). Aux is the owner's write timestamp.
	MsgTYield
	// MsgTWB carries an evicted owned block's data home (data). Aux is
	// the owner's write timestamp.
	MsgTWB
	// MsgTNack tells the home a recall found no copy (the owner's
	// eviction write-back is already on the wire ahead of it).
	MsgTNack

	numMsgKinds
)

var msgNames = [...]string{
	"ReadReq", "ReadReply", "WriteReq", "WriteData", "WriteDone",
	"Inval", "InvalAck", "Notice", "NoticeAck",
	"FwdRead", "FwdWrite", "OwnerData", "SharingWB", "XferDone", "FwdNack",
	"WriteBack", "WriteThrough", "WTAck", "Evict", "InvNotify",
	"NoticePost",
	"LockReq", "LockGrant", "LockFree", "BarArrive", "BarGo",
	"FlagSet", "FlagWait", "FlagGo",
	"TReadReq", "TReadReply", "TRenewReq", "TRenewAck",
	"TWriteReq", "TWriteReply", "TRecall", "TYield", "TWB", "TNack",
}

// String returns the message kind mnemonic.
func (k MsgKind) String() string {
	if int(k) < len(msgNames) {
		return msgNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// wantData flags a MsgWriteReq that needs the block's contents (the line
// was invalid at the writer).
const wantData = 1

// NumMsgKinds returns the number of message kinds (for traffic reports).
func NumMsgKinds() int { return int(numMsgKinds) }

// MsgName returns the mnemonic for a raw message-kind integer — the form
// fault plans and error messages use.
func MsgName(kind int) string { return MsgKind(kind).String() }

// MsgKindByName resolves a mnemonic (as printed by MsgName) back to its
// kind. The second result is false for unknown names.
func MsgKindByName(name string) (int, bool) {
	for k, n := range msgNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// The faults package renders and parses plans in terms of message kinds
// but cannot import this package (protocol imports mesh imports faults);
// register the naming functions with it instead, so plan text and
// validation errors speak mnemonics.
func init() {
	faults.RegisterKindNames(MsgName, MsgKindByName)
}

// IsSync reports whether the kind is synchronization traffic.
func (k MsgKind) IsSync() bool { return k >= MsgLockReq && k <= MsgFlagGo }
