package protocol

import (
	"fmt"
	"math/bits"

	"lazyrc/internal/cache"
	"lazyrc/internal/causal"
	"lazyrc/internal/directory"
	"lazyrc/internal/mesh"
	"lazyrc/internal/stats"
)

// This file implements the message handling shared by the two eager
// protocols (ERC, in the style of the DASH implementation, and the
// sequentially consistent baseline). The home-node logic is identical —
// an ownership-based MSI directory with 3-hop forwarding — and only the
// CPU side differs: ERC buffers writes and stalls at releases, SC stalls
// on every write.
//
// Unlike the lazy protocols, a write to a shared block invalidates every
// other sharer immediately; the home collects the invalidation
// acknowledgements and only then grants ownership. Requests that arrive
// for a block whose collection (or forwarding) is still in progress are
// deferred and replayed afterwards.

// eagerGrant records what the single waiting writer of a busy block is
// owed when invalidation acknowledgements finish arriving.
type eagerGrant struct {
	writer   int
	wantData bool
}

// eagerState is the per-node bookkeeping for the eager home side; it
// lives on the Node but is only touched by these handlers.
// xfer is a forwarded request whose service by the current owner is
// pending. The home does not commit the directory change until the owner
// confirms (XferDone) — a nacked transfer retries the original request
// against then-current state — and defers all other requests for the
// block meanwhile. This is the DASH-style discipline that keeps two
// crossing ownership transfers from deadlocking or losing a copy.
type xfer struct {
	req      int
	isWrite  bool
	wantData bool
}

// pendingReq is a deferred request together with the completion time of
// the memory access that was started speculatively when it first arrived.
// The memory module is charged exactly once per request — re-charging on
// every queue-service attempt would let the memory backlog outrun
// simulated time under contention.
type pendingReq struct {
	m      mesh.Msg
	memEnd uint64
}

// heldDrop is a copy-drop notification (eviction hint or write-back)
// that arrived for a block whose ownership transfer is still pending.
// The transfer's directory commit happens at XferDone — after the data
// already reached the requester — so a requester that obtains and then
// immediately replaces its copy can have its drop notification arrive
// before the commit that records the copy. Applying the drop early makes
// the commit resurrect a dead sharer (a copy the home can never
// invalidate again, or a phantom owner every future request is forwarded
// to and NACKed by, forever). Drops for mid-transfer blocks are held and
// applied in arrival order once the transfer commits or aborts.
type heldDrop struct {
	src int
	wb  bool // write-back (conditional owner removal) vs eviction hint
}

type eagerState struct {
	grants   map[uint64]eagerGrant
	deferred map[uint64][]pendingReq
	xfers    map[uint64]xfer
	held     map[uint64][]heldDrop
	// servicing marks blocks whose deferred-queue head is being
	// re-processed. Queue service is strictly FIFO: while a queue or the
	// servicing mark exists, newly arriving requests join the back —
	// without this, a re-serviced request re-enters the protocol
	// processor behind fresh arrivals and can be starved indefinitely.
	servicing map[uint64]bool
}

func (n *Node) eager() *eagerState {
	if n.eagerHome == nil {
		n.eagerHome = &eagerState{
			grants:    make(map[uint64]eagerGrant),
			deferred:  make(map[uint64][]pendingReq),
			xfers:     make(map[uint64]xfer),
			held:      make(map[uint64][]heldDrop),
			servicing: make(map[uint64]bool),
		}
	}
	return n.eagerHome
}

// eagerDeliver dispatches one message for an eager-protocol node.
func eagerDeliver(n *Node, m mesh.Msg) {
	switch MsgKind(m.Kind) {
	case MsgReadReq:
		eagerHomeRead(n, m)
	case MsgWriteReq:
		eagerHomeWrite(n, m)
	case MsgInvalAck:
		eagerHomeInvalAck(n, m)
	case MsgWriteBack:
		eagerHomeWriteBack(n, m)
	case MsgSharingWB:
		n.mergeHome(m.Addr, m.Vals, ^uint64(0))
		n.memAccess(m.Size) // concurrent write-back; nobody waits
	case MsgXferDone:
		eagerXferDone(n, m)
	case MsgFwdNack:
		eagerFwdNack(n, m)
	case MsgEvict:
		eagerHomeEvict(n, m)
	case MsgFwdRead, MsgFwdWrite:
		eagerOwnerForward(n, m)
	case MsgInval:
		eagerInval(n, m)
	case MsgReadReply:
		eagerReadReply(n, m)
	case MsgWriteData:
		eagerWriteData(n, m)
	case MsgWriteDone:
		eagerWriteDone(n, m)
	case MsgOwnerData:
		eagerOwnerData(n, m)
	case MsgWTAck:
		n.wtPending--
		n.checkDrain()
	default:
		panic(fmt.Sprintf("protocol: eager node %d got unexpected %v", n.ID, MsgKind(m.Kind)))
	}
}

// eagerBusy reports whether block is mid-collection or mid-transfer.
func eagerBusy(n *Node, block uint64) bool {
	e := n.Dir.Peek(block)
	if e == nil {
		return false
	}
	es := n.eager()
	_, collecting := es.grants[block]
	_, transferring := es.xfers[block]
	return collecting || transferring || e.PendingAcks > 0
}

// eagerAdmit decides whether a freshly arrived request may be processed
// now; everything else joins the back of the block's queue, remembering
// its already-started memory access.
func eagerAdmit(n *Node, m mesh.Msg, memEnd uint64) bool {
	es := n.eager()
	if es.servicing[m.Addr] || eagerBusy(n, m.Addr) || len(es.deferred[m.Addr]) > 0 {
		es.deferred[m.Addr] = append(es.deferred[m.Addr], pendingReq{m: m, memEnd: memEnd})
		return false
	}
	return true
}

// eagerUnbusy pops the head of block's deferred queue — if the block has
// fully quiesced — and services it directly: protocol-processor occupancy
// is charged again (the directory is re-read), the memory access is not.
// The servicing mark keeps fresh arrivals from jumping the queue.
func eagerUnbusy(n *Node, block uint64) {
	es := n.eager()
	if es.servicing[block] || eagerBusy(n, block) {
		return
	}
	q := es.deferred[block]
	if len(q) == 0 {
		return
	}
	p := q[0]
	if len(q) == 1 {
		delete(es.deferred, block)
	} else {
		es.deferred[block] = q[1:]
	}
	es.servicing[block] = true
	dirEnd := n.ppAcquire(causal.KindDir, block, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		delete(es.servicing, block)
		memEnd := maxTime(p.memEnd, n.now())
		if MsgKind(p.m.Kind) == MsgReadReq {
			eagerProcessRead(n, p.m, memEnd)
		} else {
			eagerProcessWrite(n, p.m, memEnd)
		}
	})
}

// eagerHomeRead serves a read request: memory supplies clean data; dirty
// blocks are forwarded to their owner (the 3-hop transaction the lazy
// protocol eliminates).
func eagerHomeRead(n *Node, m mesh.Msg) {
	memEnd := n.memAccess(n.lineBytes())
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		if !eagerAdmit(n, m, memEnd) {
			return
		}
		eagerProcessRead(n, m, memEnd)
	})
}

// eagerProcessRead resolves an admitted read request against the current
// directory state.
func eagerProcessRead(n *Node, m mesh.Msg, memEnd uint64) {
	e := n.Dir.Entry(m.Addr)
	switch e.State {
	case directory.Dirty:
		owner := e.Writers.Only()
		if owner != m.Src {
			// Forward to the owner; it supplies the reader and writes
			// the block back home concurrently. The directory commits
			// when the owner confirms; the block is busy until then.
			n.eager().xfers[m.Addr] = xfer{req: m.Src}
			n.send(owner, MsgFwdRead, m.Addr, 0, uint64(m.Src), 0)
			return
		}
		// The owner itself re-reads: its write-back must be in flight.
		// Answer from memory.
		e.Writers.Clear()
		e.Recompute()
		fallthrough
	default:
		e.Sharers.Add(m.Src)
		e.Recompute()
		n.Dir.Check(m.Addr, e)
		st := uint64(e.State)
		n.Env.Eng.At(maxTime(n.now(), memEnd), func() {
			n.sendData(m.Src, MsgReadReply, m.Addr, n.lineBytes(), st, 0, n.homeVals(m.Addr))
		})
		eagerUnbusy(n, m.Addr)
	}
}

// eagerHomeWrite serves an ownership request: sharers are invalidated
// immediately (their acknowledgements collected at the home), dirty
// blocks are forwarded to the owner, and the requester becomes the sole
// owner.
func eagerHomeWrite(n *Node, m mesh.Msg) {
	var memEnd uint64
	if m.Arg&wantData != 0 {
		memEnd = n.memAccess(n.lineBytes())
	}
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		if !eagerAdmit(n, m, memEnd) {
			return
		}
		eagerProcessWrite(n, m, memEnd)
	})
}

// eagerProcessWrite resolves an admitted ownership request against the
// current directory state.
func eagerProcessWrite(n *Node, m mesh.Msg, memEnd uint64) {
	wantsData := m.Arg&wantData != 0
	e := n.Dir.Entry(m.Addr)
	switch e.State {
	case directory.Dirty:
		owner := e.Writers.Only()
		if owner == m.Src {
			// The requester already owns the block at the directory
			// (its copy died in a race it has not yet observed);
			// complete with data so it can refill.
			if wantsData {
				at := maxTime(n.now(), memEnd)
				n.Env.Eng.At(at, func() {
					n.sendData(m.Src, MsgWriteData, m.Addr, n.lineBytes(), uint64(directory.Dirty), 1, n.homeVals(m.Addr))
				})
			} else {
				n.send(m.Src, MsgWriteDone, m.Addr, 0, 0, 0)
			}
			eagerUnbusy(n, m.Addr)
			return
		}
		// Transfer ownership through the current owner; the directory
		// commits when the owner confirms, and the block is busy until
		// then.
		n.eager().xfers[m.Addr] = xfer{req: m.Src, isWrite: true, wantData: wantsData}
		n.send(owner, MsgFwdWrite, m.Addr, 0, uint64(m.Src), 0)

	case directory.Shared, directory.Uncached:
		var others []int
		e.Sharers.Visit(func(id int) {
			if id != m.Src {
				others = append(others, id)
			}
		})
		e.Sharers.Clear()
		e.Writers.Clear()
		e.Sharers.Add(m.Src)
		e.Writers.Add(m.Src)
		e.State = directory.Dirty
		n.Dir.Check(m.Addr, e)
		if len(others) == 0 {
			if wantsData {
				at := maxTime(n.now(), memEnd)
				n.Env.Eng.At(at, func() {
					n.sendData(m.Src, MsgWriteData, m.Addr, n.lineBytes(), uint64(directory.Dirty), 1, n.homeVals(m.Addr))
				})
			} else {
				n.send(m.Src, MsgWriteDone, m.Addr, 0, 0, 0)
			}
			eagerUnbusy(n, m.Addr)
			return
		}
		// Invalidate every other sharer and collect acks here.
		dspEnd := n.ppAcquire(causal.KindFanout, m.Addr, uint64(len(others))*n.noticeCost())
		e.PendingAcks = len(others)
		n.eager().grants[m.Addr] = eagerGrant{writer: m.Src, wantData: wantsData}
		n.Env.Eng.At(dspEnd, func() {
			for _, id := range others {
				n.send(id, MsgInval, m.Addr, 0, 0, 0)
			}
		})

	default:
		panic(fmt.Sprintf("protocol: eager home write in state %v", e.State))
	}
}

// eagerHomeInvalAck counts one invalidation acknowledgement; the last one
// releases the waiting writer and replays deferred requests.
func eagerHomeInvalAck(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindAck, m.Addr, n.noticeCost())
	n.Env.Eng.At(end, func() {
		e := n.Dir.Entry(m.Addr)
		e.PendingAcks--
		if e.PendingAcks < 0 {
			panic(fmt.Sprintf("protocol: node %d negative inval acks for block %d", n.ID, m.Addr))
		}
		if e.PendingAcks > 0 {
			return
		}
		g, ok := n.eager().grants[m.Addr]
		if !ok {
			panic(fmt.Sprintf("protocol: node %d ack collection without grant for block %d", n.ID, m.Addr))
		}
		delete(n.eager().grants, m.Addr)
		if g.wantData {
			memEnd := n.memAccess(n.lineBytes())
			n.Env.Eng.At(memEnd, func() {
				n.sendData(g.writer, MsgWriteData, m.Addr, n.lineBytes(), uint64(directory.Dirty), 1, n.homeVals(m.Addr))
			})
		} else {
			n.send(g.writer, MsgWriteDone, m.Addr, 0, 0, 0)
		}
		eagerUnbusy(n, m.Addr)
	})
}

// eagerHomeWriteBack absorbs a replaced dirty block. The owner check
// guards against the case where the owner re-fetched the block before
// its write-back landed. The directory mutation commits at dirEnd —
// protocol-processor completion times are monotone in delivery order, so
// every same-block message delivered after this one observes the
// post-write-back directory. Committing at max(dirEnd, memEnd) instead
// would let a re-fetch request delivered just after the write-back (the
// sequencer drains a parked successor in the same cycle a retransmitted
// write-back fills its gap) re-grant ownership first and have the stale
// guard then untrack the live copy. Only the acknowledgement waits for
// the memory access.
func eagerHomeWriteBack(n *Node, m mesh.Msg) {
	n.mergeHome(m.Addr, m.Vals, ^uint64(0))
	memEnd := n.memAccess(n.lineBytes())
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		eagerDropOrHold(n, m.Addr, heldDrop{src: m.Src, wb: true})
	})
	n.Env.Eng.At(maxTime(dirEnd, memEnd), func() {
		n.send(m.Src, MsgWTAck, m.Addr, 0, 0, 0)
	})
}

// eagerHomeEvict absorbs a clean-copy replacement hint. Like the
// write-back above, the directory mutation commits at dirEnd — and is
// held if the block's ownership transfer is still pending.
func eagerHomeEvict(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(end, func() {
		eagerDropOrHold(n, m.Addr, heldDrop{src: m.Src})
	})
}

// eagerDropOrHold applies one copy-drop notification to the directory —
// unless it comes from the requester of the block's still-pending
// ownership transfer, in which case it is held until the transfer
// commits (XferDone) or aborts (FwdNack). Such a notification refers to
// the very copy the pending transfer is about to record: the requester
// received the owner's data and replaced the line before the (lost and
// retransmitted) XferDone reached home, so applying it before the
// commit makes the commit resurrect the dead copy. Drops from any other
// node touch only that node's directory membership, which the commit
// does not dispute — they commute with it and apply immediately.
func eagerDropOrHold(n *Node, block uint64, d heldDrop) {
	es := n.eager()
	if x, open := es.xfers[block]; open && x.req == d.src {
		es.held[block] = append(es.held[block], d)
		return
	}
	eagerApplyDrop(n, block, d)
}

// eagerApplyDrop commits one copy-drop notification. A write-back from
// a node the directory no longer records as owner is stale — the owner
// re-fetched the block before its write-back landed — and must not
// untrack the live copy; eviction hints are unconditional.
func eagerApplyDrop(n *Node, block uint64, d heldDrop) {
	e := n.Dir.Peek(block)
	if e == nil {
		return
	}
	if d.wb && !e.Writers.Has(d.src) {
		return
	}
	e.Sharers.Remove(d.src)
	e.Writers.Remove(d.src)
	e.Recompute()
	n.Dir.Check(block, e)
}

// eagerReleaseHeld applies, in arrival order, the copy drops that were
// held while block's ownership transfer was pending. Called after the
// transfer's directory commit (or abort) and before deferred-queue
// service, so replayed requests observe the drops.
func eagerReleaseHeld(n *Node, block uint64) {
	es := n.eager()
	drops := es.held[block]
	if len(drops) == 0 {
		return
	}
	delete(es.held, block)
	for _, d := range drops {
		eagerApplyDrop(n, block, d)
	}
}

// eagerOwnerForward handles a forwarded request at the current owner.
// With a valid copy in hand it supplies the original requester
// (transferring ownership for writes, downgrading and writing back for
// reads) and confirms with XferDone, upon which the home commits the
// directory change. Without a copy — it was evicted, or the grant that
// makes this node owner is still in flight — it NACKs, and the home
// retries the original request against then-current state, exactly as
// DASH retries forwarded requests. Waiting at the owner instead would
// let two crossing transfers deadlock.
func eagerOwnerForward(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindNotice, m.Addr, n.noticeCost())
	n.Env.Eng.At(end, func() {
		req := int(m.Arg)
		// NACK when the copy is gone — or when this node's own access to
		// the block is still pending (the fill landed but the store that
		// motivated it has not committed): yielding now would let the
		// block ping-pong without any processor making progress.
		if n.Cache.Lookup(m.Addr) == nil || n.txn(m.Addr) != nil {
			n.send(m.Src, MsgFwdNack, m.Addr, 0, 0, 0)
			return
		}
		if MsgKind(m.Kind) == MsgFwdRead {
			vals := n.copyVals(m.Addr)
			n.Cache.Downgrade(m.Addr)
			// Concurrent sharing write-back to the home's memory.
			n.sendData(m.Src, MsgSharingWB, m.Addr, n.lineBytes(), 0, 0, vals)
			n.sendData(req, MsgOwnerData, m.Addr, n.lineBytes(), uint64(directory.Shared), 0, vals)
		} else {
			// Yield the block entirely.
			vals := n.copyVals(m.Addr)
			if _, ok := n.Cache.Invalidate(m.Addr); ok {
				n.Env.Class.Lose(n.ID, m.Addr, stats.LossCoherence, n.wordsPerLine())
			}
			n.sendData(req, MsgOwnerData, m.Addr, n.lineBytes(), uint64(directory.Dirty), 1, vals)
		}
		n.send(m.Src, MsgXferDone, m.Addr, 0, 0, 0)
	})
}

// eagerXferDone commits a confirmed ownership transfer in the directory
// and releases the block's deferred requests.
func eagerXferDone(n *Node, m mesh.Msg) {
	es := n.eager()
	x, ok := es.xfers[m.Addr]
	if !ok {
		panic(fmt.Sprintf("protocol: node %d XferDone without pending transfer (block %d)", n.ID, m.Addr))
	}
	delete(es.xfers, m.Addr)
	e := n.Dir.Entry(m.Addr)
	if x.isWrite {
		e.Sharers.Clear()
		e.Writers.Clear()
		e.Sharers.Add(x.req)
		e.Writers.Add(x.req)
		e.State = directory.Dirty
	} else {
		e.Sharers.Add(x.req) // the old owner keeps a read-only copy
		e.Writers.Clear()
		e.Recompute()
	}
	n.Dir.Check(m.Addr, e)
	eagerReleaseHeld(n, m.Addr)
	eagerUnbusy(n, m.Addr)
}

// eagerFwdNack retries a request whose forwarded service failed. The
// transfer window closes and the original request joins the BACK of the
// block's deferred queue: any request the stale owner itself has queued
// (it re-requests immediately after losing its copy) is served first,
// restoring an owner the retry can be forwarded to — putting the retry
// first instead starves the owner and livelocks.
func eagerFwdNack(n *Node, m mesh.Msg) {
	es := n.eager()
	x, ok := es.xfers[m.Addr]
	if !ok {
		panic(fmt.Sprintf("protocol: node %d FwdNack without pending transfer (block %d)", n.ID, m.Addr))
	}
	delete(es.xfers, m.Addr)
	eagerReleaseHeld(n, m.Addr)
	orig := mesh.Msg{Src: x.req, Dst: n.ID, Addr: m.Addr}
	if x.isWrite {
		orig.Kind = int(MsgWriteReq)
		if x.wantData {
			orig.Arg = wantData
		}
	} else {
		orig.Kind = int(MsgReadReq)
	}
	es.deferred[m.Addr] = append(es.deferred[m.Addr], pendingReq{m: orig, memEnd: n.now()})
	eagerUnbusy(n, m.Addr)
}

// eagerInval invalidates a (clean) sharer's copy immediately and
// acknowledges the collecting home. Copies still in flight are flagged to
// die on arrival.
func eagerInval(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindNotice, m.Addr, n.noticeCost())
	n.Env.Eng.At(end, func() {
		// A data fill still in flight dies on arrival; a present copy
		// dies now — including one with an outstanding upgrade request,
		// which lost the ownership race and will be re-resolved when the
		// home replays it.
		// A pending write-miss fill is left alone: its grant is
		// serialized after this collection at the home and must survive.
		if t := n.txn(m.Addr); t != nil && t.ExpectData && !t.IsWrite && !t.Data.IsOpen() {
			t.InvalidateOnFill = true
		} else if _, ok := n.Cache.Invalidate(m.Addr); ok {
			n.Env.Class.Lose(n.ID, m.Addr, stats.LossCoherence, n.wordsPerLine())
		}
		n.send(m.Src, MsgInvalAck, m.Addr, 0, 0, 0)
	})
}

// ---- Requester side ------------------------------------------------------

func eagerReadReply(n *Node, m mesh.Msg) {
	eagerFill(n, m.Addr, cache.ReadOnly, m.Vals)
}

func eagerWriteData(n *Node, m mesh.Msg) {
	eagerFill(n, m.Addr, cache.ReadWrite, m.Vals)
}

func eagerOwnerData(n *Node, m mesh.Msg) {
	st := cache.ReadOnly
	if m.Aux == 1 {
		st = cache.ReadWrite
	}
	eagerFill(n, m.Addr, st, m.Vals)
}

// eagerFill completes a data reply at the requester: the line lands in
// state st unless a racing invalidation or read-forward marked the
// transaction, in which case it dies or demotes on arrival; then any
// buffered stores for the block are resolved.
func eagerFill(n *Node, block uint64, st cache.LineState, vals []uint64) {
	t := n.txn(block)
	if t == nil {
		panic(fmt.Sprintf("protocol: node %d data reply without txn (block %d)", n.ID, block))
	}
	n.fillLine(block, st, vals, func() {
		t.Filled = true
		inv := t.InvalidateOnFill
		n.finishTxn(t)
		if inv {
			n.dropFilledCopyEager(block)
		}
		eagerRetireWB(n, block)
	})
}

func eagerWriteDone(n *Node, m mesh.Msg) {
	t := n.txn(m.Addr)
	if t == nil {
		panic(fmt.Sprintf("protocol: node %d write done without txn (block %d)", n.ID, m.Addr))
	}
	if l := n.Cache.Lookup(m.Addr); l != nil && l.State == cache.ReadOnly {
		n.Cache.Upgrade(m.Addr)
	}
	n.finishTxn(t)
	eagerRetireWB(n, m.Addr)
}

// dropFilledCopyEager invalidates a copy whose invalidation raced its
// fill.
func (n *Node) dropFilledCopyEager(block uint64) {
	if _, ok := n.Cache.Invalidate(block); ok {
		n.Env.Class.Lose(n.ID, block, stats.LossCoherence, n.wordsPerLine())
	}
}

// eagerRetireWB resolves a write-buffer entry once a transaction for its
// block completes: apply the stores if ownership arrived, start an
// upgrade if only data arrived, restart the miss if an invalidation won
// the race.
func eagerRetireWB(n *Node, block uint64) {
	e := n.WB.Find(block)
	if e == nil {
		return
	}
	line := n.Cache.Lookup(block)
	switch {
	case line != nil && line.State == cache.ReadWrite:
		words := n.WB.Retire(block).Words
		for m := words; m != 0; m &= m - 1 {
			n.commitWB(block, bits.TrailingZeros64(m))
		}
		n.wbRetired()
	case line != nil:
		// Data arrived read-only (merged read); request ownership.
		if n.txn(block) == nil {
			n.newTxn(block).IsWrite = true
			n.send(n.homeOf(block), MsgWriteReq, block, 0, 0, 0)
		}
	default:
		if t := n.txn(block); t != nil {
			t.Done.Subscribe(func() { eagerRestartWrite(n, block) })
		} else {
			eagerRestartWrite(n, block)
		}
	}
}

// eagerRestartWrite restarts a write miss whose previous fill was
// invalidated in flight.
func eagerRestartWrite(n *Node, block uint64) {
	e := n.WB.Find(block)
	if e == nil || n.txn(block) != nil {
		return
	}
	word := bits.TrailingZeros64(e.Words)
	n.countMiss(block, word, false)
	t := n.newTxn(block)
	t.ExpectData = true
	t.IsWrite = true
	n.send(n.homeOf(block), MsgWriteReq, block, 0, wantData, 0)
}
