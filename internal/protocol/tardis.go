package protocol

// Tardis: timestamp coherence in the style of Yu & Devadas (PACT '15).
// Instead of tracking sharers and fanning out invalidations, the home
// hands every reader a logical lease [wts, rts] on the block's current
// version: the copy may satisfy loads while the reader's program
// timestamp pts stays within the lease. A write creates a new version at
// ts = max(pts, rts+1) — logically *after* every read the old lease
// could have served — so stale copies need never be hunted down; they
// simply expire. Reading a copy drags pts forward to its wts
// (physiological time), which is what makes the total order real.
//
// This file holds the machinery shared by both timestamp protocols (the
// per-node clock, lease cache, compression/rebase, the requester-side
// message paths) plus Tardis proper, the sequentially consistent flavor:
// stores stall until ownership is granted, exactly like SC, so the only
// relaxation relative to SC is temporal (leases instead of
// invalidations), not ordering.

import (
	"fmt"
	"math/bits"
	"sort"

	"lazyrc/internal/cache"
	"lazyrc/internal/causal"
	"lazyrc/internal/mesh"
	"lazyrc/internal/stats"
)

// tsLease is a node-side cached lease for one line: the version's write
// timestamp and the end of the read lease granted by the home.
type tsLease struct {
	wts, rts uint64
}

// tardisNode bundles the per-node state of the timestamp protocols:
// requester-side logical clock and lease cache, and the home-side
// serialization state for the blocks homed here. Allocated on first
// touch; nil on nodes running invalidation protocols.
type tardisNode struct {
	pts     uint64 // program timestamp
	bts     uint64 // compression base: leases store deltas from here
	rebases uint64 // times the base moved (compression overflows)

	leases map[uint64]tsLease // cached leases by block

	// Home side: per-block request serialization. The home services one
	// request per block at a time; later arrivals queue in FIFO order.
	busy     map[uint64]bool
	deferred map[uint64][]mesh.Msg
	recall   map[uint64]*tardisRecall
}

// tardisRecall is one open recall episode at a home: the owner has been
// asked to yield block, and the request that triggered the recall waits
// for the yield (or nack) to land.
type tardisRecall struct {
	owner   int
	pending mesh.Msg
}

// td returns the node's timestamp state, allocating it on first touch.
func (n *Node) td() *tardisNode {
	if n.tardis == nil {
		n.tardis = &tardisNode{
			leases:   make(map[uint64]tsLease),
			busy:     make(map[uint64]bool),
			deferred: make(map[uint64][]mesh.Msg),
			recall:   make(map[uint64]*tardisRecall),
		}
	}
	return n.tardis
}

// ---- Lease cache and timestamp compression ------------------------------

// tsMaxDelta returns the largest timestamp delta the node's bounded
// lease storage can represent (the compression knob).
func (n *Node) tsMaxDelta() uint64 {
	return 1<<uint(n.Env.Cfg.TSDeltaBits) - 1
}

// installLease records a lease for block, rebasing the compression base
// when the new lease's timestamps do not fit as deltas. A rebase clamps
// surviving leases' wts up to the new base (only weakens the renewal
// fast path — the home proves currency by wts match) and expires leases
// whose rts falls below it (a copy we can no longer prove fresh is
// treated as stale, which is always safe).
func (n *Node) installLease(block uint64, l tsLease) {
	td := n.td()
	if l.rts > td.bts+n.tsMaxDelta() {
		newBase := l.rts - n.tsMaxDelta()
		td.rebases++
		var expired []uint64
		for b, old := range td.leases {
			if old.rts < newBase {
				expired = append(expired, b)
				continue
			}
			if old.wts < newBase {
				old.wts = newBase
				td.leases[b] = old
			}
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
		for _, b := range expired {
			delete(td.leases, b)
			n.observe("lease-expire", b, td.pts, -1)
		}
		td.bts = newBase
	}
	if l.wts < td.bts {
		l.wts = td.bts
	}
	td.leases[block] = l
}

// bumpPTS advances the program timestamp to ts (monotonic max).
func (n *Node) bumpPTS(ts uint64) {
	td := n.td()
	if ts > td.pts {
		td.pts = ts
	}
}

// ---- Fast paths ----------------------------------------------------------

// tardisReadHit is both timestamp protocols' load fast path: an owned
// line always satisfies the load; a read copy satisfies it while the
// lease covers pts. Reading drags pts to the version's wts
// (physiological time). Pure counter updates — runs on the processor's
// private clock.
func tardisReadHit(n *Node, block uint64) bool {
	line := n.Cache.Lookup(block)
	if line == nil {
		return false
	}
	td := n.td()
	l, ok := td.leases[block]
	if line.State == cache.ReadWrite {
		// Owner: the copy is the globally latest version.
		n.bumpPTS(l.wts)
		return true
	}
	if !ok {
		return false // lease lost to a rebase; refetch
	}
	if n.Env.Cfg.Mutation != "skip-lease-renewal" && td.pts > l.rts {
		return false // lease expired; CPURead renews it
	}
	n.bumpPTS(l.wts)
	return true
}

// tardisWriteHit is the store fast path: only the exclusive owner writes
// without messages. The store creates a new version at
// ts = max(pts, rts+1), after every load the old lease could serve.
func tardisWriteHit(n *Node, block uint64, word int) bool {
	line := n.Cache.Lookup(block)
	if line == nil || line.State != cache.ReadWrite {
		return false
	}
	td := n.td()
	l := td.leases[block]
	ts := td.pts
	if l.rts+1 > ts {
		ts = l.rts + 1
	}
	n.installLease(block, tsLease{wts: ts, rts: ts})
	td.pts = ts
	n.commitWB(block, word)
	return true
}

// ---- Load path -----------------------------------------------------------

// tardisCPURead performs a load that missed the fast path: merge onto an
// outstanding transaction, renew an expired lease (control-only when the
// copy is provably current), or fetch the line with a fresh lease.
func tardisCPURead(n *Node, block uint64, word int) {
	td := n.td()
	for {
		if tardisReadHit(n, block) {
			return
		}
		if t := n.txn(block); t != nil {
			if !t.Data.IsOpen() {
				n.PS.ReadStall += n.waitStall(&t.Data, t.CT, causal.StallRead, "merged read fill")
			} else {
				n.PS.ReadStall += n.waitStall(&t.Done, t.CT, causal.StallRead, "transaction completion")
			}
			continue
		}
		line := n.Cache.Lookup(block)
		if l, ok := td.leases[block]; ok && line != nil {
			// Expired lease on a resident copy: ask the home to extend
			// it, proving currency with the cached wts. The reply is an
			// ack (copy current) or a full data reply (copy stale).
			n.countMiss(block, word, true)
			t := n.newTxn(block)
			n.send(n.homeOf(block), MsgTRenewReq, block, 0, td.pts, l.wts)
			n.PS.ReadStall += n.waitStall(&t.Data, t.CT, causal.StallRead, "lease renewal")
			continue
		}
		n.countMiss(block, word, false)
		t := n.newTxn(block)
		t.ExpectData = true
		n.send(n.homeOf(block), MsgTReadReq, block, 0, td.pts, 0)
		n.PS.ReadStall += n.waitStall(&t.Data, t.CT, causal.StallRead, "read fill")
		if t.Filled {
			return
		}
	}
}

// tardisReadReply handles a data reply carrying a fresh lease (a read
// miss fill, or a renewal whose cached copy turned out stale).
func tardisReadReply(n *Node, m mesh.Msg) {
	t := n.txn(m.Addr)
	if t == nil {
		panic("tardis: read reply without transaction")
	}
	n.installLease(m.Addr, tsLease{wts: m.Arg, rts: m.Aux})
	n.fillLine(m.Addr, cache.ReadOnly, m.Vals, func() {
		t.Filled = true
		n.finishTxn(t)
		tardisRetireWB(n, m.Addr)
	})
}

// tardisRenewAck handles the control-only renewal fast path: the cached
// copy was current, only the lease end moved.
func tardisRenewAck(n *Node, m mesh.Msg) {
	t := n.txn(m.Addr)
	if t == nil {
		panic("tardis: renew ack without transaction")
	}
	n.installLease(m.Addr, tsLease{wts: m.Arg, rts: m.Aux})
	n.observe("lease-renew", m.Addr, m.Aux, m.Src)
	t.Filled = true
	n.finishTxn(t)
	tardisRetireWB(n, m.Addr)
}

// ---- Store path ----------------------------------------------------------

// tardisSendWriteReq opens an ownership transaction for block and asks
// the home. With a leased resident copy the request carries the cached
// wts so the home can grant control-only when the copy is current; a
// bare request asks for data unconditionally.
func tardisSendWriteReq(n *Node, block uint64) *Txn {
	td := n.td()
	t := n.newTxn(block)
	t.IsWrite = true
	aux := uint64(wantData)
	if l, ok := td.leases[block]; ok && n.Cache.Lookup(block) != nil {
		aux = 2 | l.wts<<2
	} else {
		t.ExpectData = true
	}
	n.send(n.homeOf(block), MsgTWriteReq, block, 0, td.pts, aux)
	return t
}

// tardisWriteReply handles an ownership grant. The store's version
// timestamp is Arg; data rides along iff the home could not prove our
// copy current (Aux&1). The buffered store commits in the same event as
// the grant.
func tardisWriteReply(n *Node, m mesh.Msg) {
	t := n.txn(m.Addr)
	if t == nil {
		panic("tardis: write reply without transaction")
	}
	n.installLease(m.Addr, tsLease{wts: m.Arg, rts: m.Arg})
	n.bumpPTS(m.Arg)
	if m.Aux&1 != 0 {
		n.fillLine(m.Addr, cache.ReadWrite, m.Vals, func() {
			t.Filled = true
			n.finishTxn(t)
			tardisRetireWB(n, m.Addr)
		})
		return
	}
	// Control-only grant: upgrade the resident copy in place. The copy
	// can have been evicted while the request was in flight (a
	// conflicting fill); we are then an owner without data — retireWB's
	// restart path refetches, and recalls meanwhile find no copy and
	// nack, which is safe because the evicted copy was clean.
	if line := n.Cache.Lookup(m.Addr); line != nil {
		n.Cache.Upgrade(m.Addr)
	}
	t.Filled = true
	n.finishTxn(t)
	tardisRetireWB(n, m.Addr)
}

// tardisRetireWB commits buffered stores for block once ownership and
// data are both present, mirroring the eager protocols' retirement: if
// the line is owned, drain the write buffer into it; if only a read copy
// (or nothing) is resident, (re)start the ownership request.
func tardisRetireWB(n *Node, block uint64) {
	if n.WB.Find(block) == nil {
		return
	}
	line := n.Cache.Lookup(block)
	switch {
	case line != nil && line.State == cache.ReadWrite:
		words := n.WB.Retire(block).Words
		for m := words; m != 0; m &= m - 1 {
			tardisWriteHit(n, block, bits.TrailingZeros64(m))
		}
		n.wbRetired()
	default:
		if t := n.txn(block); t != nil {
			t.Done.Subscribe(func() { tardisRetireWB(n, block) })
			return
		}
		tardisSendWriteReq(n, block)
	}
}

// ---- Recall (owner side) -------------------------------------------------

// tardisRecalled handles the home's request to yield an owned block: the
// protocol processor takes the notice, the copy is dropped, and its data
// travels home. A recall that finds no copy nacks — the owner's eviction
// write-back is already on the wire ahead of the nack (same FIFO
// channel), so the home always merges the data before trusting memory.
func tardisRecalled(n *Node, m mesh.Msg) {
	end := n.ppAcquire(causal.KindDir, m.Addr, n.noticeCost())
	n.Env.Eng.At(end, func() { tardisYieldOrNack(n, m) })
}

// tardisYieldOrNack answers a recall once the protocol processor has
// taken the notice. An ownership grant whose fill is still in flight —
// the line sits in the cache read-write but the transaction is open —
// holds the recall until the fill lands: answering early would yield a
// copy missing the very store the grant was for, and the write requester
// behind the recall would restart into the same race, livelocking two
// contending writers.
func tardisYieldOrNack(n *Node, m mesh.Msg) {
	block := m.Addr
	line := n.Cache.Lookup(block)
	if line == nil || line.State != cache.ReadWrite {
		// No owned copy (and any in-flight transaction here is a request
		// still queued at the home — nacking now is what unblocks it).
		n.send(m.Src, MsgTNack, block, 0, 0, 0)
		return
	}
	if t := n.txn(block); t != nil {
		t.Done.Subscribe(func() { tardisYieldOrNack(n, m) })
		return
	}
	// When resumed from the Done subscription this runs ahead of the
	// reply handler's own retirement; drain the write buffer first so the
	// yielded copy carries the granted store.
	tardisRetireWB(n, block)
	td := n.td()
	wts := td.leases[block].wts
	vals := n.copyVals(block)
	if _, ok := n.Cache.Invalidate(block); ok {
		n.Env.Class.Lose(n.ID, block, stats.LossCoherence, n.wordsPerLine())
	}
	delete(td.leases, block)
	n.observe("lease-expire", block, td.pts, m.Src)
	n.sendData(m.Src, MsgTYield, block, n.lineBytes(), ^uint64(0), wts, vals)
}

// tardisEvict ships a replaced owned line's data home (the home cleared
// us as owner when the write-back lands); clean read copies drop
// silently — the home keeps no sharer record to update, which is the
// protocol's whole point.
func tardisEvict(n *Node, v cache.Line) {
	td := n.td()
	wts := td.leases[v.Block].wts
	delete(td.leases, v.Block)
	if v.Dirty != 0 {
		n.wtPending++
		n.sendData(n.homeOf(v.Block), MsgTWB, v.Block, n.lineBytes(), ^uint64(0), wts, n.copyVals(v.Block))
	}
}

// TardisResidual reports leftover home-side timestamp machinery at the
// end of a run: a busy block, deferred requests, or an open recall mean
// a request was admitted and never finished service. Nil for nodes not
// running a timestamp protocol.
func (n *Node) TardisResidual() error {
	td := n.tardis
	if td == nil {
		return nil
	}
	for b := range td.busy {
		return fmt.Errorf("block %d still in home service at end of run", b)
	}
	for b, q := range td.deferred {
		if len(q) > 0 {
			return fmt.Errorf("block %d has %d deferred home request(s) at end of run", b, len(q))
		}
	}
	for b, rc := range td.recall {
		return fmt.Errorf("block %d has an open recall of node %d at end of run", b, rc.owner)
	}
	return nil
}

// ---- Shared protocol plumbing -------------------------------------------

// tsPaths supplies the fast paths, eviction, message dispatch, and sync
// timestamp piggybacking shared by both timestamp protocols.
type tsPaths struct{}

func (tsPaths) ReadHit(n *Node, block uint64) bool            { return tardisReadHit(n, block) }
func (tsPaths) WriteHit(n *Node, block uint64, word int) bool { return tardisWriteHit(n, block, word) }
func (tsPaths) Evict(n *Node, v cache.Line)                   { tardisEvict(n, v) }
func (tsPaths) CPURead(n *Node, block uint64, word int)       { tardisCPURead(n, block, word) }

// ReleaseTS stamps release-class sync messages with the releaser's
// clock; AcquireTS folds a grant's stamp into the acquirer's clock
// before AcquireEnd runs. Together they order lease expiry after the
// releases the program observed (physiological time across sync).
func (tsPaths) ReleaseTS(n *Node) uint64 { return n.td().pts }
func (tsPaths) AcquireTS(n *Node, ts uint64) {
	td := n.td()
	if ts > td.pts {
		td.pts = ts
		n.observe("ts-bump", 0, ts, -1)
	}
}

func (tsPaths) Deliver(n *Node, m mesh.Msg) {
	switch MsgKind(m.Kind) {
	case MsgTReadReq, MsgTRenewReq, MsgTWriteReq:
		tardisHomeRequest(n, m)
	case MsgTWB:
		tardisHomeWB(n, m)
	case MsgTYield:
		tardisHomeYield(n, m)
	case MsgTNack:
		tardisHomeNack(n, m)
	case MsgTReadReply:
		tardisReadReply(n, m)
	case MsgTRenewAck:
		tardisRenewAck(n, m)
	case MsgTWriteReply:
		tardisWriteReply(n, m)
	case MsgTRecall:
		tardisRecalled(n, m)
	case MsgWTAck:
		n.wtPending--
		n.checkDrain()
	default:
		panic("tardis: unexpected message " + MsgKind(m.Kind).String())
	}
}

// ---- Tardis (sequentially consistent flavor) -----------------------------

// Tardis is the SC flavor: every store stalls until ownership is
// granted, so the memory order is exactly SC's and the protocols differ
// only in how readers learn about writes (lease expiry vs invalidation).
type Tardis struct{ tsPaths }

func (*Tardis) Name() string    { return "tardis" }
func (*Tardis) Lazy() bool      { return false }
func (*Tardis) WriteBack() bool { return true }

// CPUWrite performs a stalling store, mirroring SC: the write buffer is
// a one-deep MSHR, and the CPU parks until the grant commits the store.
func (*Tardis) CPUWrite(n *Node, block uint64, word int) {
	for {
		if tardisWriteHit(n, block, word) {
			return
		}
		if t := n.txn(block); t != nil {
			n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "prior transaction")
			if n.WB.Find(block) == nil {
				return // a retirement committed our buffered store
			}
			continue
		}
		if _, ok := n.WB.Put(block, word); !ok {
			n.stallWBFull()
			continue
		}
		line := n.Cache.Lookup(block)
		n.countMiss(block, word, line != nil)
		t := tardisSendWriteReq(n, block)
		n.PS.WriteStall += n.waitStall(&t.Done, t.CT, causal.StallWrite, "write completion")
		if n.WB.Find(block) == nil {
			return
		}
	}
}

func (*Tardis) AcquireBegin(n *Node)            {}
func (*Tardis) AcquireEnd(n *Node, done func()) { done() }

// Release is a no-op, as under SC: every store already performed before
// the program moved past it. In-flight eviction write-backs are safe to
// leave behind — the home defers requests for a recalled block until
// the owner's (FIFO-ordered) data lands.
func (*Tardis) Release(n *Node) {}
