package protocol

import (
	"sort"

	"lazyrc/internal/cache"
)

// This file implements the canonical state snapshot the model checker
// hashes for visited-state deduplication. Everything protocol-visible at
// a node is encoded in a deterministic order: cache frames, buffered
// writes, outstanding transactions, pending invalidations, deferred
// notices, synchronization-object state, and the eager home machinery.
// Two nodes in the same logical state produce identical bytes regardless
// of the path that led there (map iteration never leaks into the
// encoding).

type snapBuf struct{ b []byte }

func (s *snapBuf) u64(v uint64) {
	s.b = append(s.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (s *snapBuf) bit(v bool) {
	if v {
		s.b = append(s.b, 1)
	} else {
		s.b = append(s.b, 0)
	}
}

func sortedU64(m map[uint64]bool) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k, v := range m {
		if v {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// AppendSnapshot appends a canonical byte encoding of this node's
// protocol state to b and returns the extended slice.
func (n *Node) AppendSnapshot(b []byte) []byte {
	s := &snapBuf{b: b}
	s.u64(uint64(n.ID))

	n.Cache.VisitValid(func(l *cache.Line) {
		s.u64(l.Block)
		s.b = append(s.b, byte(l.State))
		s.u64(l.Dirty)
	})
	s.u64(^uint64(0)) // section separator

	n.WB.Visit(func(e cache.WBEntry) { s.u64(e.Block); s.u64(e.Words) })
	s.u64(^uint64(0))
	n.CB.Visit(func(e cache.CBEntry) { s.u64(e.Block); s.u64(e.Words) })
	s.u64(^uint64(0))

	blocks := make([]uint64, 0, len(n.outstanding))
	for blk := range n.outstanding {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, blk := range blocks {
		t := n.outstanding[blk]
		s.u64(blk)
		s.bit(t.Data.IsOpen())
		s.bit(t.Done.IsOpen())
		s.bit(t.InvalidateOnFill)
		s.bit(t.ExpectData)
		s.bit(t.IsWrite)
		s.bit(t.Filled)
		s.bit(t.DoneEarly)
	}
	s.u64(^uint64(0))

	for _, blk := range n.pendInv {
		s.u64(blk)
	}
	s.u64(^uint64(0))
	for _, blk := range n.delayed {
		s.u64(blk)
	}
	s.u64(^uint64(0))
	s.u64(uint64(n.wtPending))
	s.bit(n.releaseParked)
	s.bit(n.wbParked)
	s.bit(n.sync.gate != nil)

	ids := make([]uint64, 0, len(n.sync.locks))
	for id := range n.sync.locks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := n.sync.locks[id]
		s.u64(id)
		s.bit(l.held)
		s.u64(l.ts)
		for _, q := range l.queue {
			s.u64(uint64(q))
		}
		s.u64(^uint64(0))
	}
	s.u64(^uint64(0))
	ids = ids[:0]
	for id := range n.sync.bars {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		bar := n.sync.bars[id]
		s.u64(id)
		s.u64(uint64(bar.arrived))
		s.u64(bar.ts)
		for _, w := range bar.waiting {
			s.u64(uint64(w))
		}
		s.u64(^uint64(0))
	}
	s.u64(^uint64(0))
	ids = ids[:0]
	for id := range n.sync.flags {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := n.sync.flags[id]
		s.u64(id)
		s.bit(f.set)
		s.u64(f.ts)
		for _, w := range f.waiters {
			s.u64(uint64(w))
		}
		s.u64(^uint64(0))
	}
	s.u64(^uint64(0))

	if es := n.eagerHome; es != nil {
		blocks = blocks[:0]
		for blk := range es.grants {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			g := es.grants[blk]
			s.u64(blk)
			s.u64(uint64(g.writer))
			s.bit(g.wantData)
		}
		s.u64(^uint64(0))
		blocks = blocks[:0]
		for blk := range es.xfers {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			x := es.xfers[blk]
			s.u64(blk)
			s.u64(uint64(x.req))
			s.bit(x.isWrite)
			s.bit(x.wantData)
		}
		s.u64(^uint64(0))
		blocks = blocks[:0]
		for blk := range es.deferred {
			if len(es.deferred[blk]) > 0 {
				blocks = append(blocks, blk)
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			s.u64(blk)
			for _, p := range es.deferred[blk] {
				s.u64(uint64(p.m.Kind))
				s.u64(uint64(p.m.Src))
				s.u64(p.m.Arg)
			}
			s.u64(^uint64(0))
		}
		s.u64(^uint64(0))
		serv := make(map[uint64]bool, len(es.servicing))
		for blk, v := range es.servicing {
			serv[blk] = v
		}
		for _, blk := range sortedU64(serv) {
			s.u64(blk)
		}
		s.u64(^uint64(0))
	}

	if td := n.tardis; td != nil {
		s.u64(td.pts)
		s.u64(td.bts)
		s.u64(td.rebases)
		blocks = blocks[:0]
		for blk := range td.leases {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			l := td.leases[blk]
			s.u64(blk)
			s.u64(l.wts)
			s.u64(l.rts)
		}
		s.u64(^uint64(0))
		for _, blk := range sortedU64(td.busy) {
			s.u64(blk)
		}
		s.u64(^uint64(0))
		blocks = blocks[:0]
		for blk := range td.deferred {
			if len(td.deferred[blk]) > 0 {
				blocks = append(blocks, blk)
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			s.u64(blk)
			for _, m := range td.deferred[blk] {
				s.u64(uint64(m.Kind))
				s.u64(uint64(m.Src))
				s.u64(m.Arg)
				s.u64(m.Aux)
			}
			s.u64(^uint64(0))
		}
		s.u64(^uint64(0))
		blocks = blocks[:0]
		for blk := range td.recall {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			rc := td.recall[blk]
			s.u64(blk)
			s.u64(uint64(rc.owner))
			s.u64(uint64(rc.pending.Kind))
			s.u64(uint64(rc.pending.Src))
			s.u64(rc.pending.Arg)
			s.u64(rc.pending.Aux)
		}
		s.u64(^uint64(0))
	}
	return s.b
}
