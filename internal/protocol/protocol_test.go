package protocol

import (
	"strings"
	"testing"

	"lazyrc/internal/config"
	"lazyrc/internal/directory"
	"lazyrc/internal/mesh"
	"lazyrc/internal/sim"
	"lazyrc/internal/stats"
)

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("mesi"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if p, err := New("lrcext"); err != nil || p.Name() != "lrc-ext" {
		t.Fatalf("alias lrcext: %v, %v", p, err)
	}
}

func TestProtocolProperties(t *testing.T) {
	for _, tc := range []struct {
		name            string
		lazy, writeback bool
	}{
		{"sc", false, true},
		{"erc", false, true},
		{"lrc", true, false},
		{"lrc-ext", true, false},
	} {
		p, err := New(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Lazy() != tc.lazy {
			t.Errorf("%s: Lazy() = %v", tc.name, p.Lazy())
		}
		if p.WriteBack() != tc.writeback {
			t.Errorf("%s: WriteBack() = %v", tc.name, p.WriteBack())
		}
	}
}

func TestNoticePolicy(t *testing.T) {
	if !(&LRC{}).EagerNotices() {
		t.Error("LRC must send notices eagerly")
	}
	if (&LRCExt{}).EagerNotices() {
		t.Error("LRCExt must defer notices")
	}
}

func TestMsgKindStrings(t *testing.T) {
	for k := MsgKind(0); k < numMsgKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "MsgKind(") {
			t.Errorf("kind %d has no mnemonic", k)
		}
	}
	if !MsgLockReq.IsSync() || !MsgFlagGo.IsSync() {
		t.Error("sync kinds not classified as sync")
	}
	if MsgReadReq.IsSync() || MsgWriteThrough.IsSync() {
		t.Error("coherence kinds classified as sync")
	}
}

// testEnv builds a bare n-node environment for white-box protocol tests.
func testEnv(t *testing.T, n int, proto string) *Env {
	t.Helper()
	cfg := config.Default(n)
	cfg.CheckInvariants = true
	eng := sim.NewEngine()
	env := &Env{
		Eng:   eng,
		Net:   mesh.New(eng, cfg),
		Cfg:   cfg,
		Stats: stats.NewMachine(n),
		Class: stats.NewClassifier(n, cfg.WordsPerLine()),
	}
	for i := 0; i < n; i++ {
		p, err := New(proto)
		if err != nil {
			t.Fatal(err)
		}
		env.Nodes = append(env.Nodes, NewNode(env, i, p))
	}
	return env
}

// TestLockQueueGrantOrder scripts three lock requesters directly against
// a sync manager and checks FIFO granting.
func TestLockQueueGrantOrder(t *testing.T) {
	env := testEnv(t, 4, "sc")
	var order []int
	for i := 1; i <= 3; i++ {
		node := env.Nodes[i]
		id := i
		node.CPU = env.Eng.Spawn("cpu", func(c *sim.Context) {
			// Stagger the requests so arrival order is deterministic.
			c.Sleep(uint64(id * 10))
			node.LockAcquire(0, 7)
			order = append(order, id)
			c.Sleep(100) // hold the lock
			node.LockRelease(0, 7)
		})
	}
	env.Nodes[0].CPU = env.Eng.Spawn("cpu0", func(c *sim.Context) {})
	env.Eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order = %v, want [1 2 3]", order)
	}
}

func TestFlagSetBeforeWait(t *testing.T) {
	env := testEnv(t, 2, "sc")
	done := false
	env.Nodes[0].CPU = env.Eng.Spawn("setter", func(c *sim.Context) {
		env.Nodes[0].FlagSet(0, 3)
	})
	env.Nodes[1].CPU = env.Eng.Spawn("waiter", func(c *sim.Context) {
		c.Sleep(500) // flag long since set
		env.Nodes[1].FlagWait(0, 3)
		done = true
	})
	env.Eng.Run()
	if !done {
		t.Fatal("waiter never released")
	}
}

func TestBarrierReuse(t *testing.T) {
	env := testEnv(t, 4, "sc")
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		node, id := env.Nodes[i], i
		node.CPU = env.Eng.Spawn("cpu", func(c *sim.Context) {
			for round := 0; round < 3; round++ {
				c.Sleep(uint64(id*7 + 1))
				node.BarrierWait(2, 9, 4)
				counts[id]++
			}
		})
	}
	env.Eng.Run()
	for id, n := range counts {
		if n != 3 {
			t.Fatalf("cpu%d passed barrier %d times, want 3", id, n)
		}
	}
}

// TestLRCWeakTransitionScript drives the lazy home directly: two writers
// make a block weak; the home collects the notice ack and completes both.
func TestLRCWeakTransitionScript(t *testing.T) {
	env := testEnv(t, 2, "lrc")
	home := env.Nodes[0]
	block := uint64(0) // homed at node 0
	var w0, w1 *sim.Context
	w0 = env.Eng.Spawn("w0", func(c *sim.Context) {
		home.Proto.CPUWrite(home, block, 0)
		g := home.txn(block)
		if g != nil {
			home.PS.WriteStall += g.Done.Wait(c, "done")
		}
	})
	w1 = env.Eng.Spawn("w1", func(c *sim.Context) {
		c.Sleep(50)
		n1 := env.Nodes[1]
		n1.Proto.CPUWrite(n1, block, 1)
		g := n1.txn(block)
		if g != nil {
			n1.PS.WriteStall += g.Done.Wait(c, "done")
		}
	})
	home.CPU = w0
	env.Nodes[1].CPU = w1
	env.Eng.Run()

	e := home.Dir.Peek(block)
	if e == nil || e.State != directory.Weak {
		t.Fatalf("directory state = %v, want WEAK", e)
	}
	if e.Writers.Len() != 2 || e.Sharers.Len() != 2 {
		t.Fatalf("writers/sharers = %d/%d, want 2/2", e.Writers.Len(), e.Sharers.Len())
	}
	if e.PendingAcks != 0 {
		t.Fatalf("pending acks = %d after completion", e.PendingAcks)
	}
	// The first writer received a notice for the second's write.
	if env.Stats.Procs[0].NoticesIn != 1 {
		t.Fatalf("writer 0 processed %d notices, want 1", env.Stats.Procs[0].NoticesIn)
	}
}

// TestTxnDuplicatePanics ensures the one-transaction-per-block invariant
// is enforced.
func TestTxnDuplicatePanics(t *testing.T) {
	env := testEnv(t, 1, "lrc")
	n := env.Nodes[0]
	n.newTxn(5)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate txn did not panic")
		}
	}()
	n.newTxn(5)
}

func TestDirCostByFamily(t *testing.T) {
	lazy := testEnv(t, 1, "lrc").Nodes[0]
	eager := testEnv(t, 1, "erc").Nodes[0]
	if lazy.dirCost() != 25 || eager.dirCost() != 15 {
		t.Fatalf("dir costs = %d/%d, want 25/15", lazy.dirCost(), eager.dirCost())
	}
}

func TestPendInvDedup(t *testing.T) {
	env := testEnv(t, 1, "lrc")
	n := env.Nodes[0]
	n.addPendInv(3)
	n.addPendInv(3)
	n.addPendInv(4)
	if len(n.pendInv) != 2 {
		t.Fatalf("pendInv = %v, want 2 unique entries", n.pendInv)
	}
}

func TestDelayedNoticeBookkeeping(t *testing.T) {
	env := testEnv(t, 1, "lrc-ext")
	n := env.Nodes[0]
	n.addDelayed(8)
	n.addDelayed(8)
	n.addDelayed(9)
	if len(n.delayed) != 2 {
		t.Fatalf("delayed = %v, want 2 unique entries", n.delayed)
	}
	n.removeDelayed(8)
	if len(n.delayed) != 1 || n.delayed[0] != 9 {
		t.Fatalf("delayed after remove = %v, want [9]", n.delayed)
	}
	n.removeDelayed(8) // absent: no-op
}

func TestLockFreeWithoutHoldPanics(t *testing.T) {
	env := testEnv(t, 2, "sc")
	defer func() {
		if recover() == nil {
			t.Fatal("freeing an un-held lock did not panic")
		}
	}()
	env.Nodes[0].handleSync(mesh.Msg{Kind: int(MsgLockFree), Aux: 3, Src: 1})
}

func TestSyncGrantWithoutWaiterPanics(t *testing.T) {
	env := testEnv(t, 2, "sc")
	defer func() {
		if recover() == nil {
			t.Fatal("grant with no waiter did not panic")
		}
	}()
	env.Nodes[0].handleSync(mesh.Msg{Kind: int(MsgLockGrant), Aux: 3, Src: 1})
}

func TestNumMsgKindsMatchesNames(t *testing.T) {
	if NumMsgKinds() != len(msgNames) {
		t.Fatalf("NumMsgKinds = %d but %d names registered", NumMsgKinds(), len(msgNames))
	}
}
