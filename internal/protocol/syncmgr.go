package protocol

import (
	"fmt"

	"lazyrc/internal/causal"
	"lazyrc/internal/mesh"
	"lazyrc/internal/sim"
)

// Synchronization objects (locks, barriers, one-shot flags) are managed
// by the protocol processor of a home node, reached by ordinary network
// messages. Their CPU-side operations carry the release-consistency
// hooks:
//
//   - acquire operations (lock acquire, barrier departure, flag wait)
//     invalidate lines with pending write notices — partly overlapped
//     with the synchronization latency itself, per §2;
//   - release operations (lock release, barrier arrival, flag set) first
//     make the processor's writes globally visible per the protocol's
//     release rules.
//
// Much of the latency of acquire-side invalidation hides behind the wait
// for the grant message: AcquireBegin runs when the request is sent, and
// only notices that arrive in the intervening time are processed (by
// AcquireEnd) after the grant.

type lockState struct {
	held  bool
	queue []int
	// ts is the maximum logical timestamp carried by any release of
	// this lock (timestamp protocols; always 0 otherwise). Grants carry
	// it back so the acquirer's clock passes every prior releaser's.
	ts uint64
}

type barState struct {
	arrived int
	waiting []int
	ts      uint64 // max release timestamp over all arrivals (monotonic)
}

type flagState struct {
	set     bool
	waiters []int
	ts      uint64 // release timestamp of the setter
}

// syncNode is the per-node synchronization state: home-side object
// tables plus the requester-side wait gate (each CPU has at most one
// synchronization operation outstanding).
type syncNode struct {
	locks map[uint64]*lockState
	bars  map[uint64]*barState
	flags map[uint64]*flagState
	gate  *sim.Gate
}

func (s *syncNode) init() {
	s.locks = make(map[uint64]*lockState)
	s.bars = make(map[uint64]*barState)
	s.flags = make(map[uint64]*flagState)
}

func (s *syncNode) lock(id uint64) *lockState {
	l := s.locks[id]
	if l == nil {
		l = &lockState{}
		s.locks[id] = l
	}
	return l
}

func (s *syncNode) bar(id uint64) *barState {
	b := s.bars[id]
	if b == nil {
		b = &barState{}
		s.bars[id] = b
	}
	return b
}

func (s *syncNode) flag(id uint64) *flagState {
	f := s.flags[id]
	if f == nil {
		f = &flagState{}
		s.flags[id] = f
	}
	return f
}

// ---- CPU-side operations (run on the node's processor context) ----------

// LockAcquire performs an acquire on the lock with the given home and id.
func (n *Node) LockAcquire(home int, id uint64) {
	n.observe("acquire", 0, id, -1)
	st := n.Env.Causal.BeginSync(n.ID, id, "lock-acquire", n.now())
	n.Proto.AcquireBegin(n)
	g := &sim.Gate{}
	n.sync.gate = g
	n.send(home, MsgLockReq, 0, 0, 0, id)
	n.PS.SyncStall += n.waitStall(g, st, causal.StallSync, fmt.Sprintf("lock %d grant", id))
	n.Env.Causal.EndSync(st, n.now())
}

// LockRelease performs a release on the lock.
func (n *Node) LockRelease(home int, id uint64) {
	n.observe("release", 0, id, -1)
	st := n.Env.Causal.BeginSync(n.ID, id, "lock-release", n.now())
	n.Proto.Release(n)
	n.send(home, MsgLockFree, n.releaseTS(), 0, 0, id)
	n.Env.Causal.EndSync(st, n.now())
}

// BarrierWait joins a barrier of the given party count: arrival has
// release semantics, departure acquire semantics.
func (n *Node) BarrierWait(home int, id uint64, parties int) {
	n.observe("release", 0, id, -1)
	n.observe("acquire", 0, id, -1)
	st := n.Env.Causal.BeginSync(n.ID, id, "barrier", n.now())
	n.Proto.Release(n)
	g := &sim.Gate{}
	n.sync.gate = g
	n.send(home, MsgBarArrive, n.releaseTS(), 0, uint64(parties), id)
	n.PS.SyncStall += n.waitStall(g, st, causal.StallSync, fmt.Sprintf("barrier %d", id))
	n.Env.Causal.EndSync(st, n.now())
}

// FlagSet sets a one-shot flag (release semantics), waking all waiters.
func (n *Node) FlagSet(home int, id uint64) {
	n.observe("release", 0, id, -1)
	st := n.Env.Causal.BeginSync(n.ID, id, "flag-set", n.now())
	n.Proto.Release(n)
	n.send(home, MsgFlagSet, n.releaseTS(), 0, 0, id)
	n.Env.Causal.EndSync(st, n.now())
}

// FlagWait blocks until the flag has been set (acquire semantics).
func (n *Node) FlagWait(home int, id uint64) {
	n.observe("acquire", 0, id, -1)
	st := n.Env.Causal.BeginSync(n.ID, id, "flag-wait", n.now())
	n.Proto.AcquireBegin(n)
	g := &sim.Gate{}
	n.sync.gate = g
	n.send(home, MsgFlagWait, 0, 0, 0, id)
	n.PS.SyncStall += n.waitStall(g, st, causal.StallSync, fmt.Sprintf("flag %d", id))
	n.Env.Causal.EndSync(st, n.now())
}

// Fence forces the protocol processor to process pending invalidations
// immediately, without any lock traffic — the paper's §4.2 remedy for
// programs with data races whose solution quality suffers from long
// invalidation delays: "adding fence operations in the code would force
// the protocol processor to process invalidations at regular intervals."
// Under the eager protocols it is a no-op. It returns when the local
// invalidation work has finished.
func (n *Node) Fence() {
	st := n.Env.Causal.BeginSync(n.ID, 0, "fence", n.now())
	g := &sim.Gate{}
	n.Proto.AcquireEnd(n, func() { g.Open() })
	n.PS.SyncStall += n.waitStall(g, st, causal.StallSync, "fence")
	n.Env.Causal.EndSync(st, n.now())
}

// releaseTS returns the logical timestamp a release-class sync message
// carries in its Addr slot: the protocol's ReleaseTS if it keeps one,
// else 0 (bit-identical to the pre-timestamp encoding).
func (n *Node) releaseTS() uint64 {
	if rt, ok := n.Proto.(releaseTimestamper); ok {
		return rt.ReleaseTS(n)
	}
	return 0
}

// ---- Message handling -----------------------------------------------------

// deliverSync handles synchronization traffic at this node (home side for
// requests, requester side for grants).
func (n *Node) deliverSync(m mesh.Msg) {
	end := n.ppAcquire(causal.KindDir, 0, n.noticeCost())
	n.Env.Eng.At(end, func() { n.handleSync(m) })
}

func (n *Node) handleSync(m mesh.Msg) {
	id := m.Aux
	switch MsgKind(m.Kind) {
	case MsgLockReq:
		l := n.sync.lock(id)
		if !l.held {
			l.held = true
			n.send(m.Src, MsgLockGrant, l.ts, 0, 0, id)
		} else {
			l.queue = append(l.queue, m.Src)
		}

	case MsgLockFree:
		l := n.sync.lock(id)
		if !l.held {
			panic(fmt.Sprintf("protocol: node %d freeing un-held lock %d", n.ID, id))
		}
		if m.Addr > l.ts {
			l.ts = m.Addr
		}
		if len(l.queue) > 0 {
			next := l.queue[0]
			l.queue = l.queue[1:]
			n.send(next, MsgLockGrant, l.ts, 0, 0, id)
		} else {
			l.held = false
		}

	case MsgBarArrive:
		b := n.sync.bar(id)
		parties := int(m.Arg)
		b.arrived++
		b.waiting = append(b.waiting, m.Src)
		if m.Addr > b.ts {
			b.ts = m.Addr
		}
		if b.arrived == parties {
			// Dispatch the releases; the protocol processor pays per
			// participant.
			end := n.ppAcquire(causal.KindFanout, 0, uint64(parties)*n.noticeCost())
			waiting := b.waiting
			ts := b.ts
			b.arrived = 0
			b.waiting = nil
			n.Env.Eng.At(end, func() {
				for _, w := range waiting {
					n.send(w, MsgBarGo, ts, 0, 0, id)
				}
			})
		}

	case MsgFlagSet:
		f := n.sync.flag(id)
		f.set = true
		if m.Addr > f.ts {
			f.ts = m.Addr
		}
		waiters := f.waiters
		f.waiters = nil
		for _, w := range waiters {
			n.send(w, MsgFlagGo, f.ts, 0, 0, id)
		}

	case MsgFlagWait:
		f := n.sync.flag(id)
		if f.set {
			n.send(m.Src, MsgFlagGo, f.ts, 0, 0, id)
		} else {
			f.waiters = append(f.waiters, m.Src)
		}

	case MsgLockGrant, MsgBarGo, MsgFlagGo:
		g := n.sync.gate
		if g == nil {
			panic(fmt.Sprintf("protocol: node %d sync grant with no waiter", n.ID))
		}
		n.sync.gate = nil
		if at, ok := n.Proto.(acquireTimestamper); ok {
			at.AcquireTS(n, m.Addr)
		}
		n.Proto.AcquireEnd(n, func() { g.Open() })

	default:
		panic(fmt.Sprintf("protocol: node %d unexpected sync message %v", n.ID, MsgKind(m.Kind)))
	}
}
