package protocol

// This file defines the two observation interfaces the model checker and
// the tracer hook into: protocol-level events (sync operations and the
// write-notice lifecycle, as opposed to raw messages) and the data-value
// shadow memory that makes litmus outcomes meaningful.
//
// The simulator decouples timing from data in the usual execution-driven
// way — workload values live in one backing store — so a stale cached
// copy still "reads" the freshest value. A DataMemory implementation
// re-couples them for tiny litmus programs: it mirrors the value each
// copy and each home line actually holds, updated at exactly the points
// where the protocol moves data (fills, store commits, merges into home
// memory). Payload-bearing messages carry a value snapshot (mesh.Msg.Vals)
// taken when the message is sent, so a fill installs the values the home
// held at reply time, not at arrival time.

// ProtEvent is one protocol-level occurrence, reported through
// Env.Observe.
type ProtEvent struct {
	// Kind is the event type: "acquire", "release" (sync operations, Obj
	// set), "wn-send" (home dispatches a write notice, Target set),
	// "wn-apply" (a node queues an arriving notice for acquire-time
	// invalidation), "wn-post" (lazier protocol posts a deferred notice),
	// or "inv-acquire" (a queued line is invalidated at an acquire).
	// The timestamp protocols add "lease-renew" (a control-only renewal
	// extended a lease), "ts-bump" (a node's logical clock advanced past
	// a sync grant's stamp), and "lease-expire" (a cached lease was
	// dropped — at an acquire sweep or on a recall).
	Kind string
	// Node is the node the event happened at.
	Node int
	// Block is the coherence block concerned (write-notice events).
	Block uint64
	// Obj is the synchronization object id (acquire/release events).
	Obj uint64
	// Target is the peer node (wn-send: the notice recipient); -1 when
	// not applicable.
	Target int
}

// DataMemory shadows the data values protocol-visible at each location.
// All slices passed in are snapshots owned by the callee; slices returned
// must be freshly allocated (they ride on messages and must be immutable).
// A nil DataMemory (the default) disables value tracking entirely.
type DataMemory interface {
	// HomeLine returns a snapshot of home memory's current line contents.
	HomeLine(block uint64) []uint64
	// CopyLine returns a snapshot of node's cached copy of block.
	CopyLine(node int, block uint64) []uint64
	// Fill records that node installed vals as its copy of block.
	Fill(node int, block uint64, vals []uint64)
	// Commit records that node's buffered store to (block, word) was
	// performed in its cached copy.
	Commit(node int, block uint64, word int)
	// MergeHome merges the words selected by mask (bit per word; all ones
	// for a full line) from vals into home memory's line.
	MergeHome(block uint64, vals []uint64, mask uint64)
}

// observe reports a protocol-level event if an observer is attached.
func (n *Node) observe(kind string, block, obj uint64, target int) {
	if n.Env.Observe != nil {
		n.Env.Observe(ProtEvent{Kind: kind, Node: n.ID, Block: block, Obj: obj, Target: target})
	}
}

// homeVals snapshots home memory's line for a data reply, or nil without
// a value tracker.
func (n *Node) homeVals(block uint64) []uint64 {
	if n.Env.Mem == nil {
		return nil
	}
	return n.Env.Mem.HomeLine(block)
}

// copyVals snapshots this node's cached copy for an owner-supplied data
// message or write-back, or nil without a value tracker.
func (n *Node) copyVals(block uint64) []uint64 {
	if n.Env.Mem == nil {
		return nil
	}
	return n.Env.Mem.CopyLine(n.ID, block)
}

// mergeHome merges arriving write data into the value tracker's home
// memory. Called at delivery-handler entry — not at the modeled memory
// completion time — so value application follows per-(src,dst) FIFO
// message order even when modeled memory timings overlap.
func (n *Node) mergeHome(block uint64, vals []uint64, mask uint64) {
	if n.Env.Mem != nil && vals != nil {
		n.Env.Mem.MergeHome(block, vals, mask)
	}
}
