package protocol

// Home side of the timestamp protocols. The directory keeps one lease
// record per block — wts, rts, and at most one exclusive owner — and no
// sharer vector at all: readers are never tracked, so nothing fans out
// when a block is written. The home's only serialization duty is
// per-block: one request in service at a time, later arrivals deferred
// in FIFO order, and a write request finding an owner opens a recall
// episode that completes when the owner's data (or nack) lands.

import (
	"lazyrc/internal/causal"
	"lazyrc/internal/directory"
	"lazyrc/internal/mesh"
)

// tardisHomeRequest admits a lease request (read, renew, or write),
// deferring it while the block is in service.
func tardisHomeRequest(n *Node, m mesh.Msg) {
	td := n.td()
	b := m.Addr
	if td.busy[b] {
		td.deferred[b] = append(td.deferred[b], m)
		return
	}
	td.busy[b] = true
	tardisHomeService(n, m)
}

// tardisHomeService starts servicing one admitted request. An exclusive
// owner's copy supersedes home memory, so any request — even a renewal —
// first recalls the owner.
func tardisHomeService(n *Node, m mesh.Msg) {
	b := m.Addr
	l := n.Dir.Lease(b)
	if l.Owner != directory.NoOwner && l.Owner != m.Src {
		n.td().recall[b] = &tardisRecall{owner: l.Owner, pending: m}
		owner := l.Owner
		end := n.ppAcquire(causal.KindDir, b, n.dirCost())
		n.Env.Eng.At(end, func() {
			n.send(owner, MsgTRecall, b, 0, 0, 0)
		})
		return
	}
	if l.Owner == m.Src {
		// The owner itself is asking again: a control-only grant raced a
		// clean eviction, so the node holds ownership with no copy and no
		// committed words. Home memory is still current; just retake the
		// grant from scratch.
		l.Owner = directory.NoOwner
		n.Dir.CheckLease(b, l)
	}
	switch MsgKind(m.Kind) {
	case MsgTReadReq:
		tardisHomeRead(n, m)
	case MsgTRenewReq:
		if l.Wts == m.Aux {
			tardisHomeRenew(n, m)
		} else {
			tardisHomeRead(n, m) // copy stale: renewal becomes a refetch
		}
	case MsgTWriteReq:
		tardisHomeWrite(n, m)
	default:
		panic("tardis: unexpected home request " + MsgKind(m.Kind).String())
	}
}

// extendLease grants a read lease covering the requester's clock:
// rts' = max(rts, pts + LeaseLen, wts).
func extendLease(l *directory.Lease, pts, leaseLen uint64) {
	want := pts + leaseLen
	if want < l.Wts {
		want = l.Wts
	}
	if want > l.Rts {
		l.Rts = want
	}
}

// tardisHomeRead serves a read miss (or a stale-copy renewal): memory
// access and directory occupancy overlap; the data reply carries the
// version's wts and the extended lease.
func tardisHomeRead(n *Node, m mesh.Msg) {
	memEnd := n.memAccess(n.lineBytes())
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		l := n.Dir.Lease(m.Addr)
		extendLease(l, m.Arg, n.Env.Cfg.LeaseLen)
		n.Dir.CheckLease(m.Addr, l)
		wts, rts := l.Wts, l.Rts
		n.Env.Eng.At(maxTime(n.now(), memEnd), func() {
			n.sendData(m.Src, MsgTReadReply, m.Addr, n.lineBytes(), wts, rts, n.homeVals(m.Addr))
			tardisHomeNext(n, m.Addr)
		})
	})
}

// tardisHomeRenew serves the renewal fast path: the requester's copy is
// provably current (wts matched), so only the lease end moves and no
// memory access or data transfer happens at all — the traffic the
// invalidation protocols can never avoid.
func tardisHomeRenew(n *Node, m mesh.Msg) {
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		l := n.Dir.Lease(m.Addr)
		extendLease(l, m.Arg, n.Env.Cfg.LeaseLen)
		n.Dir.CheckLease(m.Addr, l)
		n.observe("lease-renew", m.Addr, l.Rts, m.Src)
		n.send(m.Src, MsgTRenewAck, m.Addr, 0, l.Wts, l.Rts)
		tardisHomeNext(n, m.Addr)
	})
}

// tardisHomeWrite grants exclusive ownership at ts = max(pts, rts+1) —
// the new version is ordered after every read the outstanding leases
// could serve, which is why nobody needs to be invalidated. Data rides
// along only if the requester has no copy or its copy's wts is stale.
func tardisHomeWrite(n *Node, m mesh.Msg) {
	l := n.Dir.Lease(m.Addr)
	wantsData := m.Aux&1 != 0 || (m.Aux&2 != 0 && m.Aux>>2 != l.Wts)
	var memEnd uint64
	if wantsData {
		memEnd = n.memAccess(n.lineBytes())
	}
	dirEnd := n.ppAcquire(causal.KindDir, m.Addr, n.dirCost())
	n.Env.Eng.At(dirEnd, func() {
		l := n.Dir.Lease(m.Addr)
		ts := m.Arg
		if l.Rts+1 > ts {
			ts = l.Rts + 1
		}
		l.Wts, l.Rts, l.Owner = ts, ts, m.Src
		n.Dir.CheckLease(m.Addr, l)
		at := n.now()
		if wantsData {
			at = maxTime(at, memEnd)
		}
		n.Env.Eng.At(at, func() {
			if wantsData {
				n.sendData(m.Src, MsgTWriteReply, m.Addr, n.lineBytes(), ts, 1, n.homeVals(m.Addr))
			} else {
				n.send(m.Src, MsgTWriteReply, m.Addr, 0, ts, 0)
			}
			tardisHomeNext(n, m.Addr)
		})
	})
}

// tardisHomeNext closes one service slot for block: the oldest deferred
// request enters service, or the block goes idle.
func tardisHomeNext(n *Node, block uint64) {
	td := n.td()
	if q := td.deferred[block]; len(q) > 0 {
		m := q[0]
		if len(q) == 1 {
			delete(td.deferred, block)
		} else {
			td.deferred[block] = q[1:]
		}
		tardisHomeService(n, m)
		return
	}
	delete(td.busy, block)
}

// tardisAdoptOwnerCopy merges an owner's returned data (yield or
// eviction write-back) into home memory and clears ownership. The
// owner's copy is the globally latest version, so every word merges and
// its wts supersedes the home's record.
func tardisAdoptOwnerCopy(n *Node, m mesh.Msg) {
	n.mergeHome(m.Addr, m.Vals, m.Arg)
	l := n.Dir.Lease(m.Addr)
	if l.Owner == m.Src {
		l.Owner = directory.NoOwner
	}
	if m.Aux > l.Wts {
		l.Wts = m.Aux
		if l.Rts < l.Wts {
			l.Rts = l.Wts
		}
	}
	n.Dir.CheckLease(m.Addr, l)
}

// tardisHomeEpisodeEnd resumes the request that triggered a recall (or,
// if none is open, just releases the service slot).
func tardisHomeEpisodeEnd(n *Node, block uint64) {
	td := n.td()
	if rc := td.recall[block]; rc != nil {
		delete(td.recall, block)
		tardisHomeService(n, rc.pending)
		return
	}
	tardisHomeNext(n, block)
}

// tardisHomeWB handles an evicted owned block's data arriving home.
// Values merge at delivery (FIFO order); the modeled memory write and
// the protocol-processor notice overlap before the ack.
func tardisHomeWB(n *Node, m mesh.Msg) {
	tardisAdoptOwnerCopy(n, m)
	ppEnd := n.ppAcquire(causal.KindDir, m.Addr, n.noticeCost())
	memEnd := n.memAccess(m.Size)
	n.Env.Eng.At(maxTime(ppEnd, memEnd), func() {
		n.send(m.Src, MsgWTAck, m.Addr, 0, 0, 0)
	})
}

// tardisHomeYield handles a recalled block's data: adopt the copy, then
// serve the request the recall was holding.
func tardisHomeYield(n *Node, m mesh.Msg) {
	tardisAdoptOwnerCopy(n, m)
	ppEnd := n.ppAcquire(causal.KindDir, m.Addr, n.noticeCost())
	memEnd := n.memAccess(m.Size)
	n.Env.Eng.At(maxTime(ppEnd, memEnd), func() {
		tardisHomeEpisodeEnd(n, m.Addr)
	})
}

// tardisHomeNack handles a recall that found no copy: the owner's
// eviction write-back travelled the same FIFO channel ahead of this
// nack, so home memory is already current and ownership already cleared
// (cleared again here only defensively).
func tardisHomeNack(n *Node, m mesh.Msg) {
	l := n.Dir.Lease(m.Addr)
	if l.Owner == m.Src {
		l.Owner = directory.NoOwner
		n.Dir.CheckLease(m.Addr, l)
	}
	end := n.ppAcquire(causal.KindDir, m.Addr, n.noticeCost())
	n.Env.Eng.At(end, func() {
		tardisHomeEpisodeEnd(n, m.Addr)
	})
}
