package protocol

import (
	"lazyrc/internal/causal"
	"lazyrc/internal/mesh"
)

// LRCExt is the lazier variant of §2: the protocol processor refrains
// from sending write notices for as long as possible, buffering them
// locally and posting them only when the processor performs a release —
// or when a written block is replaced in the cache, which bounds the
// buffer at the cache size and spares the directory from writes by
// processors that no longer cache a block.
//
// As the paper shows, this wins on miss rate but moves the coherence
// work into the critical path of the release, and loses to LRC on
// overall execution time for all applications but fft.
type LRCExt struct{ invalPaths }

var _ Protocol = (*LRCExt)(nil)
var _ lazyNoticePolicy = (*LRCExt)(nil)

// Name returns "lrc-ext".
func (*LRCExt) Name() string { return "lrc-ext" }

// Lazy reports true: this protocol pays the lazy directory access cost.
func (*LRCExt) Lazy() bool { return true }

// WriteBack reports false: write-through with a coalescing buffer.
func (*LRCExt) WriteBack() bool { return false }

// EagerNotices reports false: notices are deferred to release time.
func (*LRCExt) EagerNotices() bool { return false }

// Deliver handles one coherence message (same handlers as LRC; the home
// cannot tell the protocols apart).
func (*LRCExt) Deliver(n *Node, m mesh.Msg) { lazyDeliver(n, m) }

// CPURead performs a load, exactly as under LRC.
func (*LRCExt) CPURead(n *Node, block uint64, word int) { lazyCPURead(n, block, word) }

// CPUWrite performs a store. Unlike LRC, taking write permission on a
// resident read-only line is purely local: no message leaves the node
// until the next release (or until the block is evicted).
func (*LRCExt) CPUWrite(n *Node, block uint64, word int) {
	lazyCPUWrite(n, block, word, false)
}

// AcquireBegin starts invalidating lines for already-received notices
// (unless the NoAcquireOverlap ablation defers them to AcquireEnd).
func (*LRCExt) AcquireBegin(n *Node) {
	if !n.Env.Cfg.NoAcquireOverlap {
		n.processPendInv()
	}
}

// AcquireEnd invalidates lines noticed while the synchronization
// operation was in flight.
func (*LRCExt) AcquireEnd(n *Node, done func()) {
	end := n.processPendInv()
	n.Env.Eng.At(end, done)
}

// Release posts every deferred write notice, flushes the coalescing
// buffer, and stalls until the home nodes have collected all notice
// acknowledgements and memory has absorbed all write-throughs. This is
// where the lazier protocol pays: work LRC overlapped with computation
// lands in the critical path of the release.
func (*LRCExt) Release(n *Node) {
	blocks := append([]uint64(nil), n.delayed...)
	n.delayed = n.delayed[:0]
	for _, b := range blocks {
		delete(n.delayedSet, b)
	}
	if len(blocks) > 0 {
		// Posting occupies the protocol processor per notice.
		n.ppAcquire(causal.KindFanout, 0, uint64(len(blocks))*n.noticeCost())
		for _, b := range blocks {
			n.postNotice(b)
		}
	}
	for {
		n.flushCB()
		n.waitDrained()
		if n.CB.Empty() && len(n.delayed) == 0 {
			return
		}
		// Stores retiring during the drain may have deposited fresh
		// coalesced words or deferred notices; post and flush again.
		more := append([]uint64(nil), n.delayed...)
		n.delayed = n.delayed[:0]
		for _, b := range more {
			delete(n.delayedSet, b)
			n.postNotice(b)
		}
	}
}
