package protocol

// Tardis2: the relaxed timestamp protocol (Yu, Liu & Devadas's Tardis
// 2.0 direction, mapped onto this simulator's release-consistency
// framing). Stores buffer in the write buffer and retire when the
// ownership grant arrives, as under ERC; a release drains them. The
// acquire side replaces the lazy protocols' write-notice invalidations
// with a purely local lease sweep: the grant carries the releaser's
// clock, and any cached lease that cannot cover the advanced clock is
// dropped on the spot — no notice traffic ever existed to process.

import (
	"sort"

	"lazyrc/internal/cache"
	"lazyrc/internal/causal"
	"lazyrc/internal/stats"
)

// Tardis2 is the relaxed flavor: buffered stores, releases that drain,
// and an acquire-time lease-expiry sweep.
type Tardis2 struct{ tsPaths }

func (*Tardis2) Name() string    { return "tardis2" }
func (*Tardis2) Lazy() bool      { return false }
func (*Tardis2) WriteBack() bool { return true }

// CPUWrite buffers the store and requests ownership without stalling,
// mirroring ERC: the write buffer hides the grant latency, and the
// store commits from the reply handler when ownership lands.
func (*Tardis2) CPUWrite(n *Node, block uint64, word int) {
	for {
		if tardisWriteHit(n, block, word) {
			return
		}
		allocated, ok := n.WB.Put(block, word)
		if !ok {
			n.stallWBFull()
			continue
		}
		if !allocated {
			return // coalesced into an entry already awaiting its grant
		}
		if n.txn(block) != nil {
			return // retirement after the in-flight transaction commits it
		}
		line := n.Cache.Lookup(block)
		n.countMiss(block, word, line != nil)
		tardisSendWriteReq(n, block)
		return
	}
}

func (*Tardis2) AcquireBegin(n *Node) {}

// AcquireEnd sweeps the lease cache: AcquireTS has already folded the
// grant's timestamp into pts, so any read copy whose lease ends before
// pts is stale-by-timestamp and drops now — the moral equivalent of the
// lazy protocols' acquire-time invalidation, with no write notices to
// collect or acknowledge. Owned lines are the latest version and stay;
// in-flight fills keep their transaction (the landing lease is checked
// against pts on the next read anyway).
func (*Tardis2) AcquireEnd(n *Node, done func()) {
	if n.Env.Cfg.Mutation == "skip-lease-renewal" {
		// Deliberate bug for checker self-tests: paired with ReadHit's
		// skipped expiry check, acquires never shed stale copies.
		done()
		return
	}
	td := n.td()
	var expired []uint64
	for b, l := range td.leases {
		if l.rts >= td.pts {
			continue
		}
		line := n.Cache.Lookup(b)
		if line == nil || line.State == cache.ReadWrite || n.txn(b) != nil {
			continue
		}
		expired = append(expired, b)
	}
	if len(expired) == 0 {
		done()
		return
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, b := range expired {
		if _, ok := n.Cache.Invalidate(b); ok {
			n.Env.Class.Lose(n.ID, b, stats.LossCoherence, n.wordsPerLine())
			n.PS.InvalsAtAcquire++
		}
		delete(td.leases, b)
		n.observe("lease-expire", b, td.pts, -1)
	}
	end := n.ppAcquire(causal.KindNotice, 0, uint64(len(expired))*n.noticeCost())
	n.Env.Eng.At(end, done)
}

// Release waits until every buffered store has its grant and every
// write-back is acknowledged — §2's release conditions, unchanged; only
// the invalidation half of the protocol went away.
func (*Tardis2) Release(n *Node) {
	n.waitDrained()
}
