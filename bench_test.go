package lazyrc_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench runs the experiment at Tiny scale on a 16-processor machine —
// sized so `go test -bench=.` finishes in minutes — and reports the
// figure's headline quantities as custom metrics. cmd/paperbench
// regenerates the full tables at the evaluation scale (small/medium, 64
// processors).
//
// Metric naming: `<app>_<proto>` is execution time normalized to the
// sequentially consistent run (the unit line of every figure);
// `<app>_<category>_pct` is a percentage share.

import (
	"testing"

	"lazyrc"
	"lazyrc/internal/apps"
	"lazyrc/internal/config"
	"lazyrc/internal/exp"
)

const (
	benchScale = apps.Tiny
	benchProcs = 16
)

// benchApps is the subset exercised per figure bench, chosen to cover
// the paper's three behaviour classes: false sharing (mp3d), migratory/
// eviction-bound (barnes-hut), and no-false-sharing (gauss).
var benchApps = []string{"barnes-hut", "gauss", "mp3d"}

func evaluator(b *testing.B) *exp.Evaluator {
	b.Helper()
	return exp.NewEvaluator(benchScale, benchProcs)
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := lazyrc.DefaultConfig(64)
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = exp.Table1(cfg)
	}
}

func BenchmarkTable2MissClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			r := e.Get("default", app, "erc")
			if r.VerifyErr != nil {
				b.Fatal(r.VerifyErr)
			}
			b.ReportMetric(100*r.MissShares[lazyrc.FalseShare], app+"_false_pct")
			b.ReportMetric(100*r.MissShares[lazyrc.Eviction], app+"_evict_pct")
		}
	}
}

func BenchmarkTable3MissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			for _, proto := range []string{"erc", "lrc", "lrc-ext"} {
				r := e.Get("default", app, proto)
				b.ReportMetric(100*r.MissRate, app+"_"+proto+"_missrate_pct")
			}
		}
	}
}

func BenchmarkFig4LazyVsEager(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			b.ReportMetric(e.Normalized("default", app, "erc"), app+"_erc")
			b.ReportMetric(e.Normalized("default", app, "lrc"), app+"_lrc")
		}
	}
}

func BenchmarkFig5OverheadBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			for _, proto := range []string{"lrc", "erc"} {
				cpu, rd, wr, sy := e.OverheadShares("default", app, proto)
				b.ReportMetric(100*cpu, app+"_"+proto+"_cpu_pct")
				b.ReportMetric(100*rd, app+"_"+proto+"_read_pct")
				b.ReportMetric(100*wr, app+"_"+proto+"_write_pct")
				b.ReportMetric(100*sy, app+"_"+proto+"_sync_pct")
			}
		}
	}
}

func BenchmarkFig6LazyVsLazier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			b.ReportMetric(e.Normalized("default", app, "lrc"), app+"_lrc")
			b.ReportMetric(e.Normalized("default", app, "lrc-ext"), app+"_lrcext")
		}
	}
}

func BenchmarkFig7LazierBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			for _, proto := range []string{"lrc", "lrc-ext"} {
				_, _, _, sy := e.OverheadShares("default", app, proto)
				b.ReportMetric(100*sy, app+"_"+proto+"_sync_pct")
			}
		}
	}
}

func BenchmarkFig8FutureMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			b.ReportMetric(e.Normalized("future", app, "erc"), app+"_erc")
			b.ReportMetric(e.Normalized("future", app, "lrc"), app+"_lrc")
			b.ReportMetric(e.Normalized("future", app, "lrc-ext"), app+"_lrcext")
		}
	}
}

func BenchmarkFig9FutureBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := evaluator(b)
		for _, app := range benchApps {
			for _, proto := range []string{"lrc", "erc"} {
				_, rd, _, sy := e.OverheadShares("future", app, proto)
				b.ReportMetric(100*rd, app+"_"+proto+"_read_pct")
				b.ReportMetric(100*sy, app+"_"+proto+"_sync_pct")
			}
		}
	}
}

func BenchmarkSweepSensitivity(b *testing.B) {
	// One representative sweep point per §4.3 parameter: the lazy/eager
	// ratio at doubled memory latency, doubled bandwidth, and doubled
	// line size, for the most protocol-sensitive application.
	muts := map[string]func(*config.Config){
		"latency40": func(c *config.Config) { c.MemSetup = 40 },
		"bw4":       func(c *config.Config) { c.MemBW, c.NetBW, c.BusBW = 4, 4, 4 },
		"line256":   func(c *config.Config) { c.LineSize = 256 },
	}
	for i := 0; i < b.N; i++ {
		for name, mut := range muts {
			times := map[string]uint64{}
			for _, proto := range []string{"erc", "lrc"} {
				cfg := config.Default(benchProcs)
				cfg.CacheSize = exp.CacheForScale(benchScale)
				mut(&cfg)
				app, err := apps.New("mp3d", benchScale)
				if err != nil {
					b.Fatal(err)
				}
				m, err := apps.Run(cfg, proto, app)
				if err != nil {
					b.Fatal(err)
				}
				times[proto] = m.Stats.ExecutionTime()
			}
			b.ReportMetric(float64(times["lrc"])/float64(times["erc"]), "mp3d_lazy_over_eager_"+name)
		}
	}
}

func BenchmarkMp3dQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := exp.Mp3dQuality(benchScale, benchProcs)
		if len(out) == 0 {
			b.Fatal("empty quality report")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed — simulated
// cycles per wall-clock second on one representative run — for tracking
// the simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		app, err := apps.New("fft", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		cfg := config.Default(benchProcs)
		m, err := apps.Run(cfg, "lrc", app)
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Stats.ExecutionTime()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}
