module lazyrc

go 1.22
